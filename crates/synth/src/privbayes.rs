//! PrivBayes (Zhang et al. 2017): Bayesian-network synthesis under pure
//! (ε,0)-DP.
//!
//! Half the ε budget buys the network structure (a sequence of
//! exponential-mechanism selections of (attribute, parent-set) pairs scored
//! by mutual information), half buys Laplace-noised conditional probability
//! tables. Sampling is ancestral through the learned network.
//!
//! PrivBayes is the one mechanism in the benchmark defined over
//! *modify-one-record* neighbors; we follow the paper and account for that
//! with doubled sensitivity on the counts.

use crate::common::{check_domain_limit, dataset_from_columns};
use crate::error::{Result, SynthError};
use crate::workload::all_pairs;
use crate::{FitContext, FittedState, Synthesizer};
use rand::rngs::StdRng;
use rand::Rng;
use rand::RngCore;
use rand::SeedableRng;
use synrd_data::{Dataset, Domain, Marginal, MarginalEngine};
use synrd_dp::{derive_seed, exponential_mechanism, laplace_mechanism, Privacy};
use synrd_pgm::{assemble_chunks, parallel_rows, record_sampling_pass};

/// Configuration for [`PrivBayes`].
#[derive(Debug, Clone, Copy)]
pub struct PrivBayesOptions {
    /// Maximum number of parents per node.
    pub max_degree: usize,
    /// Maximum cells in one conditional table.
    pub cpt_cell_limit: usize,
    /// Largest domain size the fit will attempt.
    pub domain_limit: f64,
}

impl Default for PrivBayesOptions {
    fn default() -> Self {
        PrivBayesOptions {
            max_degree: 2,
            cpt_cell_limit: 1 << 18,
            domain_limit: 1e25,
        }
    }
}

/// One node of the learned network: attribute, parents, and its noisy CPT
/// stored as a flat joint table over (parents..., attr). Public and plain
/// so the fit cache can persist the whole network as-is.
#[derive(Debug, Clone, PartialEq)]
pub struct BayesNode {
    /// The attribute this node samples.
    pub attr: usize,
    /// Its parents (must already be sampled when this node draws).
    pub parents: Vec<usize>,
    /// Noisy joint counts over sorted(parents ∪ {attr}).
    pub table: Marginal,
}

/// Check that `nodes` is a well-formed ancestral network over `domain`:
/// every attribute sampled exactly once, parents before children, and each
/// CPT a joint table over exactly sorted(parents ∪ {attr}) with the
/// domain's cardinalities.
fn validate_network(domain: &Domain, nodes: &[BayesNode]) -> std::result::Result<(), String> {
    let d = domain.len();
    if nodes.len() != d {
        return Err(format!("{} nodes for {d} attributes", nodes.len()));
    }
    let mut sampled = vec![false; d];
    for (i, node) in nodes.iter().enumerate() {
        if node.attr >= d {
            return Err(format!(
                "node {i} samples out-of-domain attribute {}",
                node.attr
            ));
        }
        if sampled[node.attr] {
            return Err(format!("attribute {} sampled twice", node.attr));
        }
        for &p in &node.parents {
            if p >= d {
                return Err(format!("node {i} has out-of-domain parent {p}"));
            }
            if !sampled[p] {
                return Err(format!("node {i} parent {p} not sampled before its child"));
            }
        }
        let mut expected: Vec<usize> = node.parents.clone();
        expected.push(node.attr);
        expected.sort_unstable();
        expected.dedup();
        if expected.len() != node.parents.len() + 1 {
            return Err(format!("node {i} lists its own attribute as a parent"));
        }
        if node.table.attrs() != expected.as_slice() {
            return Err(format!(
                "node {i} CPT covers {:?}, expected {:?}",
                node.table.attrs(),
                expected
            ));
        }
        for (&a, &card) in node.table.attrs().iter().zip(node.table.shape()) {
            let domain_card = domain.cardinality(a).map_err(|e| e.to_string())?;
            if card != domain_card {
                return Err(format!(
                    "node {i} CPT gives attribute {a} cardinality {card}, domain has {domain_card}"
                ));
            }
        }
        sampled[node.attr] = true;
    }
    Ok(())
}

/// The PrivBayes synthesizer.
#[derive(Debug, Clone, Default)]
pub struct PrivBayes {
    options: PrivBayesOptions,
    fitted: Option<(Domain, Vec<BayesNode>)>,
}

impl PrivBayes {
    /// PrivBayes with custom options.
    pub fn with_options(options: PrivBayesOptions) -> PrivBayes {
        PrivBayes {
            options,
            fitted: None,
        }
    }

    /// The learned topological structure (attr, parents), post-fit.
    pub fn structure(&self) -> Option<Vec<(usize, Vec<usize>)>> {
        self.fitted
            .as_ref()
            .map(|(_, nodes)| nodes.iter().map(|n| (n.attr, n.parents.clone())).collect())
    }
}

impl Synthesizer for PrivBayes {
    fn name(&self) -> &'static str {
        "PrivBayes"
    }

    fn fit_with(
        &mut self,
        data: &Dataset,
        privacy: Privacy,
        seed: u64,
        _ctx: FitContext,
    ) -> Result<()> {
        check_domain_limit(data.domain(), self.options.domain_limit, "PrivBayes")?;
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, "privbayes-fit"));
        // Pure-DP budget: convert whatever we were given onto the ε axis at
        // δ=0 semantics (ρ-zCDP has no exact pure-ε form; we use the paper's
        // shared ε axis where PrivBayes runs at the nominal ε).
        let epsilon = match privacy {
            Privacy::Pure { epsilon } => epsilon,
            Privacy::Approx { epsilon, .. } => epsilon,
            Privacy::Zcdp { rho } => (2.0 * rho).sqrt(),
        };
        let d = data.n_attrs();
        let n = data.n_rows() as f64;
        let eps_structure = epsilon / 2.0;
        let eps_cpt = epsilon / 2.0;

        // Effective degree: shrink when tables would outgrow the signal
        // (PrivBayes' theta-usefulness heuristic, simplified).
        let avg_card = data.domain().shape().iter().sum::<usize>() as f64 / d as f64;
        let mut degree = self.options.max_degree;
        while degree > 1
            && avg_card.powi(degree as i32 + 1) > (n * epsilon / (4.0 * d as f64)).max(2.0)
        {
            degree -= 1;
        }

        // One marginal engine per fit: the pairwise-MI precompute counts
        // every pair joint in one fused sweep, and the CPT materialization
        // below reuses any table the structure search already counted.
        let mut engine = MarginalEngine::new(data);

        // Precompute pairwise MI on the real data (used only inside the
        // exponential mechanism, which provides the privacy).
        let pair_sets: Vec<Vec<usize>> = all_pairs(data.domain())
            .into_iter()
            .map(|q| q.attrs)
            .collect();
        engine.prefetch(&pair_sets)?;
        let mut mi = vec![vec![0.0f64; d]; d];
        for pair in &pair_sets {
            let (a, b) = (pair[0], pair[1]);
            let v = engine.mutual_information(a, b)?;
            mi[a][b] = v;
            mi[b][a] = v;
        }

        // Greedy structure selection: first node uniformly at random, then
        // d-1 exponential-mechanism picks over (attr, parent-set) candidates.
        let eps_pick = eps_structure / d.saturating_sub(1).max(1) as f64;
        let mut order: Vec<usize> = Vec::with_capacity(d);
        let mut nodes: Vec<BayesNode> = Vec::with_capacity(d);
        let first = rng.gen_range(0..d);
        order.push(first);

        while order.len() < d {
            // Candidates: for each unchosen attr, parent sets = top-s chosen
            // attrs by MI, for s = 1..=degree (plus the empty set fallback).
            let mut cand_attr: Vec<usize> = Vec::new();
            let mut cand_parents: Vec<Vec<usize>> = Vec::new();
            let mut cand_score: Vec<f64> = Vec::new();
            for x in 0..d {
                if order.contains(&x) {
                    continue;
                }
                let mut ranked: Vec<usize> = order.clone();
                ranked.sort_by(|&a, &b| mi[x][b].partial_cmp(&mi[x][a]).expect("finite MI"));
                for s in 0..=degree.min(ranked.len()) {
                    let mut parents: Vec<usize> = ranked[..s].to_vec();
                    parents.sort_unstable();
                    // Respect the CPT cell limit.
                    let mut cells: u128 = data.domain().cardinality(x)? as u128;
                    for &p in &parents {
                        cells = cells.saturating_mul(data.domain().cardinality(p)? as u128);
                    }
                    if cells > self.options.cpt_cell_limit as u128 {
                        continue;
                    }
                    // Score: n × (sum of pairwise MI to parents) — a standard
                    // surrogate for joint MI that keeps sensitivity manageable.
                    let score: f64 = parents.iter().map(|&p| mi[x][p]).sum::<f64>() * n;
                    cand_attr.push(x);
                    cand_parents.push(parents);
                    cand_score.push(score);
                }
            }
            if cand_attr.is_empty() {
                return Err(SynthError::Infeasible {
                    reason: "PrivBayes: no parent set fits the CPT cell limit".to_string(),
                });
            }
            // MI score sensitivity ≈ ln(n)+1 per modified record (PrivBayes
            // Lemma 4.1 simplified).
            let sensitivity = n.max(2.0).ln() + 1.0;
            let chosen = exponential_mechanism(&cand_score, sensitivity, eps_pick, &mut rng)?;
            order.push(cand_attr[chosen]);
            nodes.push(BayesNode {
                attr: cand_attr[chosen],
                parents: cand_parents[chosen].clone(),
                table: Marginal::from_counts(vec![0], vec![1], vec![0.0])?, // placeholder
            });
        }
        // Root node for the first attribute (no parents).
        nodes.insert(
            0,
            BayesNode {
                attr: first,
                parents: Vec::new(),
                table: Marginal::from_counts(vec![0], vec![1], vec![0.0])?,
            },
        );

        // Noisy CPTs: Laplace with sensitivity 2 (modify-one neighbors).
        // Two-attribute tables are cache hits from the MI precompute; the
        // noise goes onto a cloned copy, never the cached true counts.
        let eps_table = eps_cpt / d as f64;
        for node in &mut nodes {
            let mut attrs: Vec<usize> = node.parents.clone();
            attrs.push(node.attr);
            attrs.sort_unstable();
            let mut marginal = engine.count(&attrs)?.clone();
            laplace_mechanism(marginal.counts_mut(), 2.0, eps_table, &mut rng)?;
            node.table = marginal;
        }

        self.fitted = Some((data.domain().clone(), nodes));
        Ok(())
    }

    fn sample(&self, n: usize, seed: u64) -> Result<Dataset> {
        let (domain, nodes) = self.fitted.as_ref().ok_or(SynthError::NotFitted)?;
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, "privbayes-sample"));
        let d = domain.len();
        let k = nodes.len();
        // Node-major precompute: one conditional weight table per network
        // node, indexed by parent configuration — built once per sample
        // call instead of re-slicing the joint CPT per row per node.
        let tables: Vec<CondTable> = nodes.iter().map(CondTable::build).collect();
        // Pre-draw one raw RNG word per (row, node) in the exact row-major
        // order the per-row sampler consumed them. Both branches of a draw
        // (`gen_range` on a zero-mass configuration, `gen::<f64>`
        // otherwise) consume exactly one word, so the replay below is
        // bit-identical whatever branch each draw takes.
        let mut words: Vec<u64> = Vec::with_capacity(n * k);
        for _ in 0..n * k {
            words.push(rng.next_u64());
        }
        record_sampling_pass(n as u64);
        let sample_chunk = |lo: usize, hi: usize| -> Vec<Vec<u32>> {
            let rows = hi - lo;
            // Row-major code scratch: ancestral sampling reads each row's
            // parent codes, written earlier in the node order.
            let mut codes = vec![0u32; rows * d];
            for (ni, ct) in tables.iter().enumerate() {
                for r in 0..rows {
                    let mut cfg = 0usize;
                    for &(p_attr, stride) in &ct.parents {
                        cfg += codes[r * d + p_attr] as usize * stride;
                    }
                    let word = WordRng::new(words[(lo + r) * k + ni]);
                    codes[r * d + ct.attr] = ct.draw(cfg, word);
                }
            }
            (0..d)
                .map(|a| (0..rows).map(|r| codes[r * d + a]).collect())
                .collect()
        };
        let columns = assemble_chunks(n, d, parallel_rows(n), sample_chunk);
        dataset_from_columns(domain, columns)
    }

    fn fitted_state(&self) -> Option<FittedState> {
        self.fitted
            .as_ref()
            .map(|(domain, nodes)| FittedState::PrivBayes {
                domain: domain.clone(),
                nodes: nodes.clone(),
            })
    }

    fn restore_state(&mut self, state: FittedState) -> Result<()> {
        match state {
            FittedState::PrivBayes { domain, nodes } => {
                validate_network(&domain, &nodes).map_err(|reason| SynthError::StateMismatch {
                    reason: format!("PrivBayes: {reason}"),
                })?;
                self.fitted = Some((domain, nodes));
                Ok(())
            }
            other => Err(SynthError::StateMismatch {
                reason: format!(
                    "PrivBayes: expected privbayes state, got {}",
                    other.variant()
                ),
            }),
        }
    }
}

/// Per-node conditional table over parent configurations: `weights` holds
/// the clamped CPT counts for configuration `cfg` at
/// `cfg * card ..= cfg * card + card - 1`, `totals[cfg]` their sum in the
/// same left-to-right order the per-row sampler summed them.
struct CondTable {
    attr: usize,
    card: usize,
    /// (dataset attribute id, mixed-radix stride into the configuration id)
    /// per parent, in the joint table's attribute order.
    parents: Vec<(usize, usize)>,
    weights: Vec<f64>,
    totals: Vec<f64>,
}

impl CondTable {
    fn build(node: &BayesNode) -> CondTable {
        let table = &node.table;
        let attrs = table.attrs();
        let shape = table.shape();
        let attr_pos = attrs
            .iter()
            .position(|&a| a == node.attr)
            .expect("attr in own table");
        let card = shape[attr_pos];
        // Mixed-radix strides over the parent positions (all non-attr
        // positions, in table order).
        let parent_pos: Vec<usize> = (0..attrs.len()).filter(|&p| p != attr_pos).collect();
        let mut parents = Vec::with_capacity(parent_pos.len());
        let mut cfg_stride = 1usize;
        for &p in parent_pos.iter().rev() {
            parents.push((attrs[p], cfg_stride, p));
            cfg_stride *= shape[p];
        }
        parents.reverse();
        let n_cfg = cfg_stride;
        // One pass over the joint table scatters every cell into its
        // (configuration, value) slot — same `max(0.0)` clamp as the
        // per-row slicer.
        let mut weights = vec![0.0f64; n_cfg * card];
        let mut pos_codes = vec![0usize; attrs.len()];
        for (cell, &c) in table.counts().iter().enumerate() {
            // Decode the cell's codes (row-major over `shape`).
            let mut rem = cell;
            for p in (0..attrs.len()).rev() {
                pos_codes[p] = rem % shape[p];
                rem /= shape[p];
            }
            let mut cfg = 0usize;
            for &(_, stride, p) in &parents {
                cfg += pos_codes[p] * stride;
            }
            weights[cfg * card + pos_codes[attr_pos]] = c.max(0.0);
        }
        let totals: Vec<f64> = weights.chunks_exact(card).map(|w| w.iter().sum()).collect();
        CondTable {
            attr: node.attr,
            card,
            parents: parents
                .into_iter()
                .map(|(attr, stride, _)| (attr, stride))
                .collect(),
            weights,
            totals,
        }
    }

    /// Resolve one draw for configuration `cfg` from a replayed RNG word:
    /// the same uniform-fallback / weighted-walk arithmetic as the per-row
    /// sampler, over the precomputed weight slice.
    #[inline]
    fn draw(&self, cfg: usize, mut word: WordRng) -> u32 {
        let total = self.totals[cfg];
        if total <= 0.0 {
            word.gen_range(0..self.card) as u32
        } else {
            let weights = &self.weights[cfg * self.card..(cfg + 1) * self.card];
            let mut t = word.gen::<f64>() * total;
            let mut picked = self.card - 1;
            for (v, &w) in weights.iter().enumerate() {
                t -= w;
                if t < 0.0 {
                    picked = v;
                    break;
                }
            }
            picked as u32
        }
    }
}

/// Replays one pre-drawn 64-bit RNG word through the standard `Rng`
/// adapters, so the batched sampler reuses the exact `gen` / `gen_range`
/// arithmetic of the sequential RNG without duplicating it. A draw that
/// consumed more than one word would desynchronize the replay, so a second
/// `next_u64` panics in debug builds.
struct WordRng {
    word: u64,
    taken: bool,
}

impl WordRng {
    fn new(word: u64) -> WordRng {
        WordRng { word, taken: false }
    }
}

impl RngCore for WordRng {
    fn next_u64(&mut self) -> u64 {
        debug_assert!(!self.taken, "replayed draw consumed a second RNG word");
        self.taken = true;
        self.word
    }

    fn next_u32(&mut self) -> u32 {
        // Same word-to-u32 narrowing as the vendored StdRng.
        (self.next_u64() >> 32) as u32
    }
}

#[cfg(test)]
impl PrivBayes {
    /// The original per-row sampler, retained as the differential oracle
    /// for the node-major batched path.
    fn sample_naive(&self, n: usize, seed: u64) -> Result<Dataset> {
        let (domain, nodes) = self.fitted.as_ref().ok_or(SynthError::NotFitted)?;
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, "privbayes-sample"));
        let d = domain.len();
        let mut columns = vec![vec![0u32; n]; d];
        let mut row = vec![0u32; d];
        for r in 0..n {
            for node in nodes {
                // Conditional distribution over node.attr given sampled
                // parent codes: walk the joint table cells that match.
                let table = &node.table;
                let attrs = table.attrs();
                let attr_pos = attrs
                    .iter()
                    .position(|&a| a == node.attr)
                    .expect("attr in own table");
                let card = table.shape()[attr_pos];
                let mut weights = vec![0.0f64; card];
                // Build the fixed-code template.
                let mut codes: Vec<u32> = attrs.iter().map(|&a| row[a]).collect();
                for (v, w) in weights.iter_mut().enumerate() {
                    codes[attr_pos] = v as u32;
                    *w = table.counts()[table.index_of(&codes)].max(0.0);
                }
                let total: f64 = weights.iter().sum();
                let value = if total <= 0.0 {
                    rng.gen_range(0..card) as u32
                } else {
                    let mut t = rng.gen::<f64>() * total;
                    let mut picked = card - 1;
                    for (v, &w) in weights.iter().enumerate() {
                        t -= w;
                        if t < 0.0 {
                            picked = v;
                            break;
                        }
                    }
                    picked as u32
                };
                row[node.attr] = value;
            }
            for (a, col) in columns.iter_mut().enumerate() {
                col[r] = row[a];
            }
        }
        dataset_from_columns(domain, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use synrd_data::Attribute;

    fn parented_data(n: usize) -> Dataset {
        // c depends on (a, b) jointly: PrivBayes should pick both parents.
        let domain = Domain::new(vec![
            Attribute::binary("a"),
            Attribute::binary("b"),
            Attribute::binary("c"),
        ]);
        let mut rng = StdRng::seed_from_u64(4);
        let mut ds = Dataset::with_capacity(domain, n);
        for _ in 0..n {
            let a = u32::from(rng.gen::<f64>() < 0.5);
            let b = u32::from(rng.gen::<f64>() < 0.5);
            let c = if rng.gen::<f64>() < 0.92 {
                a ^ b
            } else {
                1 - (a ^ b)
            };
            ds.push_row(&[a, b, c]).unwrap();
        }
        ds
    }

    #[test]
    fn structure_covers_every_attribute_once() {
        let data = parented_data(4_000);
        let mut synth = PrivBayes::default();
        synth.fit(&data, Privacy::pure(2.0).unwrap(), 3).unwrap();
        let structure = synth.structure().unwrap();
        assert_eq!(structure.len(), 3);
        let mut attrs: Vec<usize> = structure.iter().map(|(a, _)| *a).collect();
        attrs.sort_unstable();
        assert_eq!(attrs, vec![0, 1, 2]);
        // Parents always precede their children in the sampling order.
        for (idx, (_, parents)) in structure.iter().enumerate() {
            let before: Vec<usize> = structure[..idx].iter().map(|(a, _)| *a).collect();
            for p in parents {
                assert!(before.contains(p), "parent {p} sampled after child");
            }
        }
    }

    #[test]
    fn cpt_cell_limit_constrains_parents() {
        let data = parented_data(1_000);
        let mut synth = PrivBayes::with_options(PrivBayesOptions {
            cpt_cell_limit: 2, // only single-attribute tables fit
            ..PrivBayesOptions::default()
        });
        let result = synth.fit(&data, Privacy::pure(1.0).unwrap(), 3);
        // Root tables need cardinality 2 <= 2, parented tables need 4 > 2:
        // the fit survives with parent-free structure.
        result.unwrap();
        let structure = synth.structure().unwrap();
        assert!(structure.iter().all(|(_, p)| p.is_empty()));
    }

    #[test]
    fn batched_sample_matches_naive() {
        let data = parented_data(3_000);
        let mut synth = PrivBayes::default();
        synth.fit(&data, Privacy::pure(2.0).unwrap(), 7).unwrap();
        for (n, seed) in [(0usize, 1u64), (1, 2), (777, 3), (20_000, 4)] {
            let batched = synth.sample(n, seed).unwrap();
            let naive = synth.sample_naive(n, seed).unwrap();
            assert_eq!(batched, naive, "n = {n}");
        }
        // A tiny ε starves some parent configurations to zero mass after
        // clamping, exercising the uniform-fallback draw on both paths.
        let mut starved = PrivBayes::default();
        starved.fit(&data, Privacy::pure(0.01).unwrap(), 3).unwrap();
        let batched = starved.sample(5_000, 9).unwrap();
        assert_eq!(batched, starved.sample_naive(5_000, 9).unwrap());
    }

    #[test]
    fn sampled_marginals_track_data_at_high_eps() {
        let data = parented_data(6_000);
        let mut synth = PrivBayes::default();
        synth.fit(&data, Privacy::pure(8.0).unwrap(), 9).unwrap();
        let sample = synth.sample(6_000, 11).unwrap();
        for a in 0..3 {
            let real = data.mean_of(a).unwrap();
            let got = sample.mean_of(a).unwrap();
            assert!((real - got).abs() < 0.05, "attr {a}: {got} vs {real}");
        }
    }
}
