//! GEM (Liu, Vietri & Wu 2021): generative networks with the Adaptive
//! Measurements framework under ρ-zCDP.
//!
//! GEM iteratively (1) privately selects the workload query where the
//! current generator errs most, (2) measures it with Gaussian noise, and
//! (3) gradient-updates the generator to match all noisy measurements so
//! far. Our generator is a uniform mixture of K product distributions with
//! per-attribute softmax logits — the same model family GEM's neural
//! network parameterizes, with fully analytic gradients. Because it never
//! materializes anything larger than a pair marginal, GEM runs on domains
//! that defeat every PGM-based method (e.g. Jeong et al.'s 1e43).
//!
//! The analytic trainer contains no GEMM, so the process-global ML
//! backend selection (`--ml-backend`, `SYNRD_ML_BACKEND`) passes through
//! this synthesizer with no effect — only PATE-CTGAN's batched MLP passes
//! route through `synrd_ml::backend`.

use crate::common::{dataset_from_columns, measure_gaussian};
use crate::error::{Result, SynthError};
use crate::workload::all_pairs;
use crate::{FitContext, FittedState, Synthesizer};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rayon::prelude::*;
use synrd_data::{Dataset, Domain, MarginalEngine};
use synrd_dp::{derive_seed, exponential_epsilon, exponential_mechanism, Accountant, Privacy};
use synrd_pgm::{parallel_rows, record_sampling_pass, search_cumulative, NoisyMeasurement};

/// Configuration for [`Gem`].
#[derive(Debug, Clone, Copy)]
pub struct GemOptions {
    /// Mixture components.
    pub mixture: usize,
    /// Select-measure rounds.
    pub rounds: usize,
    /// Gradient steps after each new measurement.
    pub grad_steps: usize,
    /// Adam learning rate on the logits.
    pub learning_rate: f64,
}

impl Default for GemOptions {
    fn default() -> Self {
        GemOptions {
            mixture: 24,
            rounds: 16,
            grad_steps: 120,
            learning_rate: 0.08,
        }
    }
}

/// Serializable GEM generator state: the mixture logits plus the Adam
/// moments, so a restored model resumes (or replays) exactly where the fit
/// left off. Shapes are `[component][attribute][code]`.
#[derive(Debug, Clone, PartialEq)]
pub struct GemState {
    /// Mixture logits.
    pub logits: Vec<Vec<Vec<f64>>>,
    /// Adam first moments, same shape as `logits`.
    pub m: Vec<Vec<Vec<f64>>>,
    /// Adam second moments, same shape as `logits`.
    pub v: Vec<Vec<Vec<f64>>>,
    /// Adam step counter.
    pub step: u64,
}

/// Mixture-of-products generator parameters.
#[derive(Debug, Clone)]
struct GemModel {
    /// logits[k][attr][code].
    logits: Vec<Vec<Vec<f64>>>,
    /// Adam moments, same shape.
    m: Vec<Vec<Vec<f64>>>,
    v: Vec<Vec<Vec<f64>>>,
    step: usize,
}

impl GemModel {
    /// Initialize with small random logits: starting every component at the
    /// same point would give all of them identical gradients forever and
    /// collapse the mixture to a single product distribution (independence),
    /// losing all pair structure.
    fn new<R: Rng + ?Sized>(k: usize, shape: &[usize], rng: &mut R) -> GemModel {
        let zeros: Vec<Vec<f64>> = shape.iter().map(|&c| vec![0.0; c]).collect();
        let logits = (0..k)
            .map(|_| {
                shape
                    .iter()
                    .map(|&c| (0..c).map(|_| rng.gen::<f64>() * 1.6 - 0.8).collect())
                    .collect()
            })
            .collect();
        GemModel {
            logits,
            m: vec![zeros.clone(); k],
            v: vec![zeros; k],
            step: 0,
        }
    }

    /// Per-component softmax probabilities for one attribute.
    fn probs(&self, k: usize, attr: usize) -> Vec<f64> {
        softmax(&self.logits[k][attr])
    }

    /// Export as plain serializable state.
    fn to_state(&self) -> GemState {
        GemState {
            logits: self.logits.clone(),
            m: self.m.clone(),
            v: self.v.clone(),
            step: self.step as u64,
        }
    }

    /// Rebuild from exported state, validating that all three parameter
    /// tensors share one shape and that shape matches `shape` (the domain's
    /// per-attribute cardinalities).
    fn from_state(state: GemState, shape: &[usize]) -> std::result::Result<GemModel, String> {
        let k = state.logits.len();
        if k == 0 {
            return Err("empty mixture".to_string());
        }
        if state.m.len() != k || state.v.len() != k {
            return Err(format!(
                "moment tensors have {} / {} components, logits have {k}",
                state.m.len(),
                state.v.len()
            ));
        }
        for comp in 0..k {
            for tensor in [&state.logits[comp], &state.m[comp], &state.v[comp]] {
                if tensor.len() != shape.len() {
                    return Err(format!(
                        "component {comp} covers {} attributes, domain has {}",
                        tensor.len(),
                        shape.len()
                    ));
                }
                for (a, (per_code, &card)) in tensor.iter().zip(shape).enumerate() {
                    if per_code.len() != card {
                        return Err(format!(
                            "component {comp} attribute {a} has {} codes, domain has {card}",
                            per_code.len()
                        ));
                    }
                }
            }
        }
        let step = usize::try_from(state.step).map_err(|_| "step overflows usize".to_string())?;
        Ok(GemModel {
            logits: state.logits,
            m: state.m,
            v: state.v,
            step,
        })
    }

    /// Model marginal over 1 or 2 attributes (probability space).
    fn marginal(&self, attrs: &[usize]) -> Vec<f64> {
        let kk = self.logits.len() as f64;
        match attrs {
            [a] => {
                let card = self.logits[0][*a].len();
                let mut out = vec![0.0; card];
                for k in 0..self.logits.len() {
                    for (o, p) in out.iter_mut().zip(self.probs(k, *a)) {
                        *o += p / kk;
                    }
                }
                out
            }
            [a, b] => {
                let ca = self.logits[0][*a].len();
                let cb = self.logits[0][*b].len();
                let mut out = vec![0.0; ca * cb];
                for k in 0..self.logits.len() {
                    let pa = self.probs(k, *a);
                    let pb = self.probs(k, *b);
                    for (i, &x) in pa.iter().enumerate() {
                        for (j, &y) in pb.iter().enumerate() {
                            out[i * cb + j] += x * y / kk;
                        }
                    }
                }
                out
            }
            _ => unreachable!("GEM measures only 1- and 2-way marginals"),
        }
    }
}

fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
    let total: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / total).collect()
}

/// The GEM synthesizer.
#[derive(Debug, Clone, Default)]
pub struct Gem {
    options: GemOptions,
    fitted: Option<(Domain, GemModel)>,
}

impl Gem {
    /// GEM with custom options.
    pub fn with_options(options: GemOptions) -> Gem {
        Gem {
            options,
            fitted: None,
        }
    }
}

impl Synthesizer for Gem {
    fn name(&self) -> &'static str {
        "GEM"
    }

    fn fit_with(
        &mut self,
        data: &Dataset,
        privacy: Privacy,
        seed: u64,
        ctx: FitContext,
    ) -> Result<()> {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, "gem-fit"));
        let mut accountant = Accountant::new(privacy);
        let total = accountant.total();
        let d = data.n_attrs();
        let shape = data.domain().shape();
        let n = data.n_rows() as f64;

        // One marginal engine per fit: every adaptive round re-scores the
        // whole workload against the same true counts, so each pair is
        // counted once and cached.
        let mut engine = MarginalEngine::new(data);

        // Warm start: all 1-way marginals on 20% of the budget.
        let rho_one = 0.20 * total / d as f64;
        let mut measured: Vec<(NoisyMeasurement, f64)> = Vec::new(); // (measurement, weight)
        for a in 0..d {
            accountant.spend(rho_one)?;
            let m = measure_gaussian(&mut engine, &[a], rho_one, &mut rng)?;
            let w = 1.0 / m.sigma.powi(2);
            measured.push((m, w));
        }

        let workload = all_pairs(data.domain());
        if workload.is_empty() {
            return Err(SynthError::Infeasible {
                reason: "GEM: empty workload (single-attribute domain)".to_string(),
            });
        }
        let mut model = GemModel::new(self.options.mixture, &shape, &mut rng);
        train(
            &mut model,
            &measured,
            n,
            self.options.grad_steps,
            self.options.learning_rate,
            ctx.threads,
        );

        // Adaptive rounds on the remaining 80%. Round 0 scores every pair,
        // so count the whole workload in one fused sweep up front.
        let rounds = self.options.rounds.min(workload.len());
        if rounds > 0 {
            let sets: Vec<Vec<usize>> = workload.iter().map(|q| q.attrs.clone()).collect();
            engine.prefetch(&sets)?;
        }
        let mut chosen: Vec<Vec<usize>> = Vec::new();
        for round in 0..rounds {
            let remaining = accountant.remaining();
            if remaining <= 1e-12 {
                break;
            }
            let rho_round = remaining / (rounds - round) as f64;
            let (rho_select, rho_measure) = (rho_round / 2.0, rho_round / 2.0);

            // Score candidates by the generator's L1 error on true counts.
            let mut cands: Vec<&Vec<usize>> = Vec::new();
            let mut scores: Vec<f64> = Vec::new();
            for q in &workload {
                if chosen.contains(&q.attrs) {
                    continue;
                }
                let true_counts = engine.count(&q.attrs)?;
                let model_probs = model.marginal(&q.attrs);
                let l1: f64 = true_counts
                    .counts()
                    .iter()
                    .zip(&model_probs)
                    .map(|(&c, &p)| (c - n * p).abs())
                    .sum();
                cands.push(&q.attrs);
                scores.push(l1);
            }
            if cands.is_empty() {
                break;
            }
            accountant.spend(rho_select)?;
            let eps_select = exponential_epsilon(rho_select)?;
            let pick = exponential_mechanism(&scores, 2.0, eps_select, &mut rng)?;
            let attrs = cands[pick].clone();

            accountant.spend(rho_measure)?;
            let m = measure_gaussian(&mut engine, &attrs, rho_measure, &mut rng)?;
            let w = 1.0 / m.sigma.powi(2);
            measured.push((m, w));
            chosen.push(attrs);
            train(
                &mut model,
                &measured,
                n,
                self.options.grad_steps,
                self.options.learning_rate,
                ctx.threads,
            );
        }

        self.fitted = Some((data.domain().clone(), model));
        Ok(())
    }

    fn sample(&self, n: usize, seed: u64) -> Result<Dataset> {
        let (domain, model) = self.fitted.as_ref().ok_or(SynthError::NotFitted)?;
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, "gem-sample"));
        let d = domain.len();
        let kk = model.logits.len();
        let cums = cumulative_tables(model, d);
        // Pre-draw the mixture-component pick and the per-attribute
        // uniforms of every row in the exact row-major order the per-row
        // sampler consumed them, so the node-major pass below is
        // bit-identical to it.
        let mut comps: Vec<u32> = Vec::with_capacity(n);
        let mut uniforms: Vec<f64> = Vec::with_capacity(n * d);
        for _ in 0..n {
            comps.push(rng.gen_range(0..kk) as u32);
            for _ in 0..d {
                uniforms.push(rng.gen());
            }
        }
        record_sampling_pass(n as u64);
        // Node-major batched ancestral sampling: resolve one attribute
        // across all rows off its precomputed per-component cumulative
        // tables. Columns are independent given the pre-drawn randomness,
        // so the parallel map is bit-identical to the sequential one.
        let build_column = |a: &usize| -> Vec<u32> {
            let a = *a;
            (0..n)
                .map(|r| {
                    let cum = &cums[comps[r] as usize][a];
                    search_cumulative(cum, uniforms[r * d + a]) as u32
                })
                .collect()
        };
        let attrs: Vec<usize> = (0..d).collect();
        let columns: Vec<Vec<u32>> = if parallel_rows(n) && d > 1 {
            attrs.par_iter().map(build_column).collect()
        } else {
            attrs.iter().map(build_column).collect()
        };
        dataset_from_columns(domain, columns)
    }

    fn fitted_state(&self) -> Option<FittedState> {
        self.fitted
            .as_ref()
            .map(|(domain, model)| FittedState::Gem {
                domain: domain.clone(),
                model: model.to_state(),
            })
    }

    fn restore_state(&mut self, state: FittedState) -> Result<()> {
        match state {
            FittedState::Gem { domain, model } => {
                let model = GemModel::from_state(model, &domain.shape()).map_err(|reason| {
                    SynthError::StateMismatch {
                        reason: format!("GEM: {reason}"),
                    }
                })?;
                self.fitted = Some((domain, model));
                Ok(())
            }
            other => Err(SynthError::StateMismatch {
                reason: format!("GEM: expected gem state, got {}", other.variant()),
            }),
        }
    }
}

/// Per-component, per-attribute cumulative probability tables (unnormalized
/// tails exactly as the per-row sampler accumulated them).
fn cumulative_tables(model: &GemModel, d: usize) -> Vec<Vec<Vec<f64>>> {
    let kk = model.logits.len();
    let mut cums: Vec<Vec<Vec<f64>>> = Vec::with_capacity(kk);
    for k in 0..kk {
        let mut per_attr = Vec::with_capacity(d);
        for a in 0..d {
            let mut c = model.probs(k, a);
            let mut acc = 0.0;
            for v in c.iter_mut() {
                acc += *v;
                *v = acc;
            }
            per_attr.push(c);
        }
        cums.push(per_attr);
    }
    cums
}

#[cfg(test)]
impl Gem {
    /// The original per-row sampler, retained as the differential oracle
    /// for the node-major batched path.
    fn sample_naive(&self, n: usize, seed: u64) -> Result<Dataset> {
        let (domain, model) = self.fitted.as_ref().ok_or(SynthError::NotFitted)?;
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, "gem-sample"));
        let d = domain.len();
        let kk = model.logits.len();
        let cums = cumulative_tables(model, d);
        let mut columns = vec![vec![0u32; n]; d];
        for r in 0..n {
            let k = rng.gen_range(0..kk);
            for (a, col) in columns.iter_mut().enumerate() {
                let u: f64 = rng.gen();
                col[r] = search_cumulative(&cums[k][a], u) as u32;
            }
        }
        dataset_from_columns(domain, columns)
    }
}

/// Adam on the mixture logits against all measurements so far.
///
/// The trainer is analytic (no GEMM): each step accumulates per-component
/// probability-space gradients, chains them through the softmax and takes
/// one Adam step. Both phases decompose over mixture components — every
/// component owns disjoint `grad_p[k]` / `logits[k]` / moment slices, and
/// each cell's accumulation stays in ascending measurement order — so the
/// fan-out over components is **bit-identical at any thread count**.
fn train(
    model: &mut GemModel,
    measured: &[(NoisyMeasurement, f64)],
    n: f64,
    steps: usize,
    lr: f64,
    threads: usize,
) {
    let kk = model.logits.len();
    let kf = kk as f64;
    let (b1, b2, eps) = (0.9f64, 0.999f64, 1e-8f64);
    // Normalize weights so the learning rate is scale-free.
    let wsum: f64 = measured.iter().map(|(_, w)| *w).sum::<f64>().max(1e-12);
    // Gradient arena wrt probabilities, hoisted out of the step loop and
    // zeroed in place: allocating `mixture × d` nested Vecs per step made
    // the trainer allocation-bound at high step counts.
    let mut grad_p: Vec<Vec<Vec<f64>>> = model
        .logits
        .iter()
        .map(|comp| comp.iter().map(|l| vec![0.0; l.len()]).collect())
        .collect();
    // Measurement weights and proportion targets are step-invariant.
    let prepared: Vec<(&NoisyMeasurement, f64, Vec<f64>)> = measured
        .iter()
        .map(|(meas, w)| (meas, w / wsum, meas.values.iter().map(|v| v / n).collect()))
        .collect();
    let threads = threads.clamp(1, kk);

    for _ in 0..steps {
        model.step += 1;
        let t = model.step as f64;
        // Adam bias-correction scalars hoisted to once per step; `powf` is
        // deterministic, so dividing by the precomputed corrections is
        // bit-identical to recomputing them per parameter.
        let bc1 = 1.0 - b1.powf(t);
        let bc2 = 1.0 - b2.powf(t);

        // Model marginals once per measurement per step (pure reads of the
        // pre-step model, shared by every component's gradient).
        let mps: Vec<Vec<f64>> = prepared
            .iter()
            .map(|(meas, _, _)| model.marginal(&meas.attrs))
            .collect();

        // Accumulate gradients wrt probabilities, one component at a time;
        // every cell sums its measurement contributions in ascending
        // measurement order.
        let model_ref: &GemModel = model;
        let mps_ref = &mps;
        let prepared_ref = &prepared;
        let accumulate = move |k: usize, comp: &mut Vec<Vec<f64>>| {
            for g in comp.iter_mut() {
                g.fill(0.0);
            }
            for ((meas, w, target), mp) in prepared_ref.iter().zip(mps_ref) {
                match meas.attrs.as_slice() {
                    [a] => {
                        for (v, g) in comp[*a].iter_mut().enumerate() {
                            *g += 2.0 * w * (mp[v] - target[v]) / kf;
                        }
                    }
                    [a, b] => {
                        let cb = model_ref.logits[0][*b].len();
                        let pa = model_ref.probs(k, *a);
                        let pb = model_ref.probs(k, *b);
                        for (i, ga) in comp[*a].iter_mut().enumerate() {
                            let mut acc = 0.0;
                            for (j, &pbj) in pb.iter().enumerate() {
                                acc += 2.0 * w * (mp[i * cb + j] - target[i * cb + j]) * pbj;
                            }
                            *ga += acc / kf;
                        }
                        for (j, gb) in comp[*b].iter_mut().enumerate() {
                            let mut acc = 0.0;
                            for (i, &pai) in pa.iter().enumerate() {
                                acc += 2.0 * w * (mp[i * cb + j] - target[i * cb + j]) * pai;
                            }
                            *gb += acc / kf;
                        }
                    }
                    _ => {}
                }
            }
        };
        if threads > 1 {
            let jobs: Vec<(usize, &mut Vec<Vec<f64>>)> = grad_p.iter_mut().enumerate().collect();
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("gem thread pool");
            pool.install(|| {
                jobs.into_par_iter()
                    .for_each(|(k, comp)| accumulate(k, comp));
            });
        } else {
            for (k, comp) in grad_p.iter_mut().enumerate() {
                accumulate(k, comp);
            }
        }

        // Chain through softmax and apply Adam — per-component parameter and
        // moment slices are disjoint, and the update is element-wise.
        let step_component = |logits_k: &mut Vec<Vec<f64>>,
                              m_k: &mut Vec<Vec<f64>>,
                              v_k: &mut Vec<Vec<f64>>,
                              grad_k: &Vec<Vec<f64>>| {
            for a in 0..logits_k.len() {
                let p = softmax(&logits_k[a]);
                let gp = &grad_k[a];
                let dot: f64 = p.iter().zip(gp).map(|(x, y)| x * y).sum();
                for u in 0..p.len() {
                    let g = p[u] * (gp[u] - dot);
                    let m = &mut m_k[a][u];
                    let v = &mut v_k[a][u];
                    *m = b1 * *m + (1.0 - b1) * g;
                    *v = b2 * *v + (1.0 - b2) * g * g;
                    let mhat = *m / bc1;
                    let vhat = *v / bc2;
                    logits_k[a][u] -= lr * mhat / (vhat.sqrt() + eps);
                }
            }
        };
        if threads > 1 {
            #[allow(clippy::type_complexity)]
            let jobs: Vec<(
                (&mut Vec<Vec<f64>>, &mut Vec<Vec<f64>>, &mut Vec<Vec<f64>>),
                &Vec<Vec<f64>>,
            )> = model
                .logits
                .iter_mut()
                .zip(model.m.iter_mut())
                .zip(model.v.iter_mut())
                .map(|((l, m), v)| (l, m, v))
                .zip(grad_p.iter())
                .collect();
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("gem thread pool");
            pool.install(|| {
                jobs.into_par_iter()
                    .for_each(|((l, m, v), g)| step_component(l, m, v, g));
            });
        } else {
            for (((l, m), v), g) in model
                .logits
                .iter_mut()
                .zip(model.m.iter_mut())
                .zip(model.v.iter_mut())
                .zip(grad_p.iter())
            {
                step_component(l, m, v, g);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use synrd_data::Attribute;

    fn correlated(n: usize) -> Dataset {
        let domain = Domain::new(vec![Attribute::binary("x"), Attribute::ordinal("y", 3)]);
        let mut rng = StdRng::seed_from_u64(6);
        let mut ds = Dataset::with_capacity(domain, n);
        for _ in 0..n {
            let x = u32::from(rng.gen::<f64>() < 0.4);
            let y = if x == 1 {
                2
            } else {
                u32::from(rng.gen::<f64>() < 0.5)
            };
            ds.push_row(&[x, y]).unwrap();
        }
        ds
    }

    #[test]
    fn mixture_learns_pair_structure() {
        let data = correlated(5_000);
        let mut synth = Gem::default();
        synth.fit(&data, Privacy::zcdp(2.0).unwrap(), 3).unwrap();
        let sample = synth.sample(5_000, 5).unwrap();
        // P(y = 2 | x = 1) must stay dominant.
        let x1 = sample.filter_rows(|r| r.get(0) == 1);
        let p = x1.proportion(1, 2).unwrap();
        assert!(p > 0.7, "p(y=2|x=1) = {p:.3}");
    }

    #[test]
    fn one_way_marginals_match_under_generous_budget() {
        let data = correlated(5_000);
        let mut synth = Gem::default();
        synth.fit(&data, Privacy::zcdp(4.0).unwrap(), 7).unwrap();
        let sample = synth.sample(5_000, 9).unwrap();
        let real = data.mean_of(0).unwrap();
        let got = sample.mean_of(0).unwrap();
        assert!((real - got).abs() < 0.05, "{got} vs {real}");
    }

    #[test]
    fn batched_sample_matches_naive() {
        let data = correlated(2_000);
        let mut synth = Gem::with_options(GemOptions {
            mixture: 8,
            rounds: 3,
            grad_steps: 30,
            learning_rate: 0.1,
        });
        synth.fit(&data, Privacy::zcdp(1.0).unwrap(), 5).unwrap();
        for (n, seed) in [(0usize, 1u64), (1, 2), (513, 3), (20_000, 4)] {
            let batched = synth.sample(n, seed).unwrap();
            let naive = synth.sample_naive(n, seed).unwrap();
            assert_eq!(batched, naive, "n = {n}");
        }
    }

    #[test]
    fn fit_is_bit_identical_across_thread_counts() {
        let data = correlated(1_200);
        let opts = GemOptions {
            mixture: 8,
            rounds: 3,
            grad_steps: 25,
            learning_rate: 0.1,
        };
        let gem_state = |synth: &Gem| match synth.fitted_state() {
            Some(FittedState::Gem { model, .. }) => model,
            other => panic!("expected gem state, got {other:?}"),
        };
        let mut base = Gem::with_options(opts);
        base.fit_with(
            &data,
            Privacy::zcdp(1.0).unwrap(),
            11,
            FitContext::sequential(),
        )
        .unwrap();
        let base_state = gem_state(&base);
        let base_sample = base.sample(777, 4).unwrap();
        for threads in [2usize, 3, 7] {
            let mut mt = Gem::with_options(opts);
            mt.fit_with(
                &data,
                Privacy::zcdp(1.0).unwrap(),
                11,
                FitContext::with_threads(threads),
            )
            .unwrap();
            assert_eq!(gem_state(&mt), base_state, "threads = {threads}");
            assert_eq!(
                mt.sample(777, 4).unwrap(),
                base_sample,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn runs_on_single_pair_workload() {
        // Smallest possible multi-attribute domain.
        let data = correlated(800);
        let mut synth = Gem::with_options(GemOptions {
            mixture: 8,
            rounds: 2,
            grad_steps: 40,
            learning_rate: 0.1,
        });
        synth.fit(&data, Privacy::zcdp(0.5).unwrap(), 1).unwrap();
        assert_eq!(synth.sample(100, 1).unwrap().n_rows(), 100);
    }
}
