//! Fitted-state export/restore must be lossless for the serve path: a
//! synthesizer restored from `fitted_state()` has to replay every draw
//! bit-for-bit against the instance that did the fitting.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use synrd_data::{Attribute, Dataset, Domain};
use synrd_synth::{FittedState, SynthError, SynthKind};

fn correlated_data(n: usize) -> Dataset {
    let domain = Domain::new(vec![
        Attribute::binary("x"),
        Attribute::binary("y"),
        Attribute::ordinal("z", 4),
    ]);
    let mut rng = StdRng::seed_from_u64(9);
    let mut ds = Dataset::with_capacity(domain, n);
    for _ in 0..n {
        let x = u32::from(rng.gen::<f64>() < 0.3);
        let y = if rng.gen::<f64>() < 0.85 { x } else { 1 - x };
        let z = if x == 1 {
            rng.gen_range(2..4)
        } else {
            rng.gen_range(0..2)
        };
        ds.push_row(&[x, y, z]).unwrap();
    }
    ds
}

#[test]
fn every_synthesizer_round_trips_its_fitted_state() {
    let data = correlated_data(2_000);
    for kind in SynthKind::ALL {
        let mut fitted = kind.build();
        let privacy = kind.native_privacy(std::f64::consts::E, data.n_rows());
        fitted
            .fit(&data, privacy, 17)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        let state = fitted
            .fitted_state()
            .unwrap_or_else(|| panic!("{}: no state after fit", kind.name()));
        assert_eq!(state.domain(), data.domain(), "{}", kind.name());

        let mut restored = kind.build();
        restored
            .restore_state(state)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        for seed in [0u64, 1, 5, 99] {
            let a = fitted.sample(700, seed).unwrap();
            let b = restored.sample(700, seed).unwrap();
            assert_eq!(a, b, "{} seed {seed}", kind.name());
        }
    }
}

#[test]
fn unfitted_synthesizers_export_no_state() {
    for kind in SynthKind::ALL {
        assert!(
            kind.build().fitted_state().is_none(),
            "{}: state before fit",
            kind.name()
        );
    }
}

#[test]
fn wrong_variant_restores_are_rejected() {
    let data = correlated_data(1_500);
    // One state of each family.
    let mut gem = SynthKind::Gem.build();
    gem.fit(&data, SynthKind::Gem.native_privacy(1.0, data.n_rows()), 3)
        .unwrap();
    let gem_state = gem.fitted_state().unwrap();
    let mut mst = SynthKind::Mst.build();
    mst.fit(&data, SynthKind::Mst.native_privacy(1.0, data.n_rows()), 3)
        .unwrap();
    let pgm_state = mst.fitted_state().unwrap();

    for (kind, state) in [
        (SynthKind::Mst, gem_state.clone()),
        (SynthKind::Aim, gem_state.clone()),
        (SynthKind::PrivMrf, gem_state.clone()),
        (SynthKind::PrivBayes, pgm_state.clone()),
        (SynthKind::PateCtgan, pgm_state.clone()),
        (SynthKind::Gem, pgm_state),
    ] {
        let err = kind.build().restore_state(state).unwrap_err();
        assert!(
            matches!(err, SynthError::StateMismatch { .. }),
            "{}: {err}",
            kind.name()
        );
    }
}

#[test]
fn inconsistent_states_are_rejected() {
    let data = correlated_data(1_500);

    // GEM with a truncated moment tensor.
    let mut gem = SynthKind::Gem.build();
    gem.fit(&data, SynthKind::Gem.native_privacy(1.0, data.n_rows()), 3)
        .unwrap();
    let Some(FittedState::Gem { domain, mut model }) = gem.fitted_state() else {
        panic!("gem state");
    };
    model.m.pop();
    let err = SynthKind::Gem
        .build()
        .restore_state(FittedState::Gem { domain, model })
        .unwrap_err();
    assert!(matches!(err, SynthError::StateMismatch { .. }), "{err}");

    // PrivBayes with a child sampled before its parent.
    let mut pb = SynthKind::PrivBayes.build();
    pb.fit(
        &data,
        SynthKind::PrivBayes.native_privacy(1.0, data.n_rows()),
        3,
    )
    .unwrap();
    let Some(FittedState::PrivBayes { domain, mut nodes }) = pb.fitted_state() else {
        panic!("privbayes state");
    };
    nodes.reverse();
    let reversed_has_parents = nodes.iter().any(|n| !n.parents.is_empty());
    if reversed_has_parents {
        let err = SynthKind::PrivBayes
            .build()
            .restore_state(FittedState::PrivBayes { domain, nodes })
            .unwrap_err();
        assert!(matches!(err, SynthError::StateMismatch { .. }), "{err}");
    }

    // PGM state whose domain disagrees with the junction tree's shape.
    let mut mst = SynthKind::Mst.build();
    mst.fit(&data, SynthKind::Mst.native_privacy(1.0, data.n_rows()), 3)
        .unwrap();
    let Some(FittedState::Pgm { model, .. }) = mst.fitted_state() else {
        panic!("mst state");
    };
    let narrow = Domain::new(vec![Attribute::binary("x"), Attribute::binary("y")]);
    let err = SynthKind::Mst
        .build()
        .restore_state(FittedState::Pgm {
            domain: narrow,
            model,
        })
        .unwrap_err();
    assert!(matches!(err, SynthError::StateMismatch { .. }), "{err}");
}
