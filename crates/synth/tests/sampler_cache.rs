//! The fitted-state sampler cache (PGM synthesizers) must be invisible in
//! the outputs and visible in the construction counter: repeated `sample`
//! calls build the flattened `TreeSampler` tables at most once per fitted
//! model, and every draw is bit-identical to the old rebuild-per-draw
//! behavior.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use synrd_data::{Attribute, Dataset, Domain};
use synrd_dp::{derive_seed, Privacy};
use synrd_pgm::{samplers_built, TreeSampler};
use synrd_synth::{Aim, Mst, PrivMrf, Synthesizer};

fn chain_data(n: usize) -> Dataset {
    let domain = Domain::new(vec![
        Attribute::binary("a"),
        Attribute::binary("b"),
        Attribute::binary("c"),
    ]);
    let mut rng = StdRng::seed_from_u64(3);
    let mut ds = Dataset::with_capacity(domain, n);
    for _ in 0..n {
        let a = u32::from(rng.gen::<f64>() < 0.5);
        let b = if rng.gen::<f64>() < 0.9 { a } else { 1 - a };
        let c = if rng.gen::<f64>() < 0.9 { b } else { 1 - b };
        ds.push_row(&[a, b, c]).unwrap();
    }
    ds
}

fn columns(ds: &Dataset) -> Vec<Vec<u32>> {
    (0..ds.n_attrs())
        .map(|a| ds.decode_column(a).unwrap())
        .collect()
}

/// Bit-identity: the cached sampler must reproduce the retired
/// rebuild-per-draw loop exactly, bootstrap draw by bootstrap draw.
#[test]
fn cached_sampler_is_bit_identical_to_rebuild_per_draw() {
    let data = chain_data(3_000);
    let mut synth = Mst::default();
    synth
        .fit(&data, Privacy::approx(1.0, 1e-9).unwrap(), 11)
        .unwrap();
    let model = synth.model().unwrap();
    for draw_seed in [0u64, 1, 2, 7, 123] {
        // The old per-draw path: a fresh sampler for every bootstrap draw.
        let oracle = TreeSampler::new(model).unwrap();
        let mut rng = StdRng::seed_from_u64(derive_seed(draw_seed, "mst-sample"));
        let expected = oracle.sample_columns(data.n_rows(), &mut rng);
        let got = synth.sample(data.n_rows(), draw_seed).unwrap();
        assert_eq!(columns(&got), expected, "draw seed {draw_seed}");
    }
}

/// At-most-once construction, for each of the three PGM synthesizers.
#[test]
fn repeated_draws_construct_the_sampler_at_most_once() {
    let data = chain_data(2_000);
    let synths: Vec<Box<dyn Synthesizer>> = vec![
        Box::new(Aim::default()),
        Box::new(Mst::default()),
        Box::new(PrivMrf::default()),
    ];
    for mut synth in synths {
        let name = synth.name();
        synth
            .fit(&data, Privacy::approx(1.0, 1e-9).unwrap(), 5)
            .unwrap();
        let before = samplers_built();
        let first = synth.sample(500, 41).unwrap();
        for seed in 42..46 {
            synth.sample(500, seed).unwrap();
        }
        let built = samplers_built() - before;
        assert_eq!(built, 1, "{name}: five draws must build one sampler");
        // Same seed replays to the same rows through the cached sampler.
        let replay = synth.sample(500, 41).unwrap();
        assert_eq!(columns(&first), columns(&replay), "{name}");
    }
}
