//! The parallel exponential-mechanism scoring paths (AIM candidate
//! utilities, MST edge scores) must be **bit-identical** to the sequential
//! ones: `map_scores` collects per-candidate results in the pinned
//! candidate order and every candidate's arithmetic is independent, so
//! thread count and schedule have nothing to perturb. These tests drive
//! the exact production scoring functions over an engine-cached candidate
//! pool, sequentially and under explicit thread pools, and compare the
//! score vectors bit for bit — plus an end-to-end fit determinism check.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::ThreadPoolBuilder;
use synrd_data::{Attribute, Dataset, Domain, Marginal, MarginalEngine};
use synrd_dp::Privacy;
use synrd_synth::{aim_candidate_score, map_scores, mst_edge_score, Aim, Mst, Synthesizer};

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// A mildly correlated 6-attribute dataset (15 candidate pairs).
fn data(n: usize) -> Dataset {
    let domain = Domain::new(vec![
        Attribute::binary("a"),
        Attribute::ordinal("b", 3),
        Attribute::binary("c"),
        Attribute::ordinal("d", 4),
        Attribute::binary("e"),
        Attribute::ordinal("f", 3),
    ]);
    let mut rng = StdRng::seed_from_u64(21);
    let mut ds = Dataset::with_capacity(domain, n);
    for _ in 0..n {
        let a = u32::from(rng.gen::<f64>() < 0.5);
        let b = (a + u32::from(rng.gen::<f64>() < 0.4)).min(2);
        let c = if rng.gen::<f64>() < 0.8 { a } else { 1 - a };
        let d: u32 = rng.gen_range(0..4);
        let e = u32::from(rng.gen::<f64>() < 0.3);
        let f = (d % 3 + u32::from(rng.gen::<f64>() < 0.2)).min(2);
        ds.push_row(&[a, b, c, d, e, f]).unwrap();
    }
    ds
}

/// All attribute pairs of the dataset.
fn pairs(d: usize) -> Vec<Vec<usize>> {
    (0..d)
        .flat_map(|a| ((a + 1)..d).map(move |b| vec![a, b]))
        .collect()
}

#[test]
fn mst_edge_scores_parallel_bitwise_equal_sequential() {
    let ds = data(4_000);
    let d = ds.n_attrs();
    let n = ds.n_rows() as f64;
    let mut engine = MarginalEngine::new(&ds);
    engine.prefetch(&pairs(d)).unwrap();
    let one_way: Vec<Vec<f64>> = (0..d)
        .map(|a| Marginal::count(&ds, &[a]).unwrap().normalized())
        .collect();
    let edges: Vec<(usize, usize)> = (0..d)
        .flat_map(|a| ((a + 1)..d).map(move |b| (a, b)))
        .collect();
    let engine_ref = &engine;
    let one_way_ref = &one_way;
    let score = |&(a, b): &(usize, usize)| {
        let joint = engine_ref.peek(&[a, b]).expect("prefetched");
        Ok(mst_edge_score(joint, &one_way_ref[a], &one_way_ref[b], n))
    };
    let sequential = map_scores(&edges, false, score).unwrap();
    for threads in [2usize, 4, 8] {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let parallel = pool.install(|| map_scores(&edges, true, score).unwrap());
        assert!(
            bits_eq(&sequential, &parallel),
            "MST edge scores diverged at {threads} threads"
        );
    }
}

#[test]
fn aim_candidate_scores_parallel_bitwise_equal_sequential() {
    let ds = data(4_000);
    let d = ds.n_attrs();
    let mut engine = MarginalEngine::new(&ds);
    let cand = pairs(d);
    engine.prefetch(&cand).unwrap();
    // A fitted model over the one-way marginals, like AIM's warm start.
    let measurements: Vec<synrd_pgm::NoisyMeasurement> = (0..d)
        .map(|a| synrd_pgm::NoisyMeasurement {
            attrs: vec![a],
            values: Marginal::count(&ds, &[a]).unwrap().counts().to_vec(),
            sigma: 1.5,
        })
        .collect();
    let shape: Vec<usize> = ds.domain().shape();
    let model = synrd_pgm::estimate(
        &shape,
        &measurements,
        synrd_pgm::EstimationOptions {
            iterations: 25,
            initial_step: 1.0,
            cell_limit: 1 << 21,
            fit_threads: 1,
        },
    )
    .unwrap();
    let engine_ref = &engine;
    let model_ref = &model;
    let score = |attrs: &Vec<usize>| {
        let true_counts = engine_ref.peek(attrs).expect("prefetched");
        let probs = model_ref.marginal_or_independent(attrs)?;
        Ok(aim_candidate_score(true_counts, &probs, 7.3, 1.0))
    };
    let sequential = map_scores(&cand, false, score).unwrap();
    for threads in [2usize, 4, 8] {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let parallel = pool.install(|| map_scores(&cand, true, score).unwrap());
        assert!(
            bits_eq(&sequential, &parallel),
            "AIM candidate scores diverged at {threads} threads"
        );
    }
}

/// End to end: a whole fit + sample is bit-identical under 1 thread and
/// under an 8-thread pool — the parallel scoring (and the parallel batched
/// sampling) cannot leak schedule into the synthesis.
#[test]
fn fits_are_bit_identical_across_thread_counts() {
    let ds = data(3_000);
    let run = |threads: usize| -> (Dataset, Dataset) {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let privacy = Privacy::approx(1.0, 1e-9).unwrap();
            let mut mst = Mst::default();
            mst.fit(&ds, privacy, 11).unwrap();
            let mut aim = Aim::default();
            aim.fit(&ds, privacy, 11).unwrap();
            (
                mst.sample(20_000, 5).unwrap(),
                aim.sample(20_000, 5).unwrap(),
            )
        })
    };
    let (mst_seq, aim_seq) = run(1);
    let (mst_par, aim_par) = run(8);
    assert_eq!(mst_seq, mst_par, "MST output depends on thread count");
    assert_eq!(aim_seq, aim_par, "AIM output depends on thread count");
}
