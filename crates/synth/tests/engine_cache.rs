//! Proof that the selection loops stopped rescanning the data: the
//! process-wide `marginal_counts_performed` counter (the data-side mirror of
//! the grid driver's fit counter) bounds the counting passes a fit may make.
//!
//! These tests share one global counter, so they serialize on a mutex —
//! everything else in this binary would otherwise race the deltas.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;
use synrd_data::{marginal_counts_performed, Attribute, Dataset, Domain};
use synrd_dp::Privacy;
use synrd_synth::{Aim, AimOptions, Gem, GemOptions, Mst, Synthesizer};

static COUNTER_LOCK: Mutex<()> = Mutex::new(());

/// A 4-attribute correlated dataset (chain with a weak extra column).
fn data(n: usize) -> Dataset {
    let domain = Domain::new(vec![
        Attribute::binary("a"),
        Attribute::binary("b"),
        Attribute::ordinal("c", 3),
        Attribute::binary("d"),
    ]);
    let mut rng = StdRng::seed_from_u64(11);
    let mut ds = Dataset::with_capacity(domain, n);
    for _ in 0..n {
        let a = u32::from(rng.gen::<f64>() < 0.5);
        let b = if rng.gen::<f64>() < 0.85 { a } else { 1 - a };
        let c = (b + u32::from(rng.gen::<f64>() < 0.3)).min(2);
        let d = u32::from(rng.gen::<f64>() < 0.4);
        ds.push_row(&[a, b, c, d]).unwrap();
    }
    ds
}

#[test]
fn aim_counts_each_candidate_at_most_once_per_fit() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let ds = data(2_000);
    let d = ds.n_attrs();
    let pairs = d * (d - 1) / 2; // the AIM workload: all attribute pairs
    let rounds = 8; // > pairs, so every round re-scores the whole workload

    let before = marginal_counts_performed();
    let mut aim = Aim::with_options(AimOptions {
        rounds,
        ..AimOptions::default()
    });
    aim.fit(&ds, Privacy::approx(1.0, 1e-9).unwrap(), 7)
        .unwrap();
    let passes = marginal_counts_performed() - before;

    // Per fit: d one-way initializations plus each workload candidate at
    // most once — never rounds × candidates, and no recount when the chosen
    // candidate is measured.
    assert!(
        passes <= (d + pairs) as u64,
        "AIM made {passes} counting passes; cap is {} (d={d} one-ways + {pairs} candidates)",
        d + pairs
    );
    // Sanity: the naive loop would have re-counted candidates every round.
    assert!(
        passes < (d + rounds.min(pairs) * pairs) as u64,
        "counter no better than the naive recount bound"
    );
}

#[test]
fn gem_counts_each_candidate_at_most_once_per_fit() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let ds = data(1_500);
    let d = ds.n_attrs();
    let pairs = d * (d - 1) / 2;

    let before = marginal_counts_performed();
    let mut gem = Gem::with_options(GemOptions {
        mixture: 8,
        rounds: 6,
        grad_steps: 30,
        learning_rate: 0.1,
    });
    gem.fit(&ds, Privacy::zcdp(1.0).unwrap(), 3).unwrap();
    let passes = marginal_counts_performed() - before;

    assert!(
        passes <= (d + pairs) as u64,
        "GEM made {passes} counting passes; cap is {}",
        d + pairs
    );
}

#[test]
fn mst_counts_each_pair_once_including_tree_measurement() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let ds = data(1_500);
    let d = ds.n_attrs();
    let pairs = d * (d - 1) / 2;

    let before = marginal_counts_performed();
    let mut mst = Mst::default();
    mst.fit(&ds, Privacy::approx(1.0, 1e-9).unwrap(), 5)
        .unwrap();
    let passes = marginal_counts_performed() - before;

    // d one-ways + every pair once; phase 3's d-1 tree-edge measurements
    // must be cache hits, not recounts.
    assert_eq!(
        passes,
        (d + pairs) as u64,
        "MST made {passes} counting passes; expected exactly {}",
        d + pairs
    );
}
