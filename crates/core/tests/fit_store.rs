//! The grid's [`FitStore`] hook: fits are keyed by dataset *content*, so
//! two papers over the same generated dataset share every
//! `(synthesizer, ε, seed)` fit — and serving a fit from the store must not
//! change a single bit of any report.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use synrd::benchmark::{fits_performed, run_paper_with_stores, BenchmarkConfig, FitStore};
use synrd::finding::{Check, Finding, FindingType};
use synrd::Publication;
use synrd_data::{Attribute, BenchmarkDataset, Dataset, Domain};
use synrd_synth::{FittedState, SynthKind};

/// `(dataset digest, synth name, ε bits, seed index)` — a fit's identity.
type FitKey = (u64, &'static str, u64, usize);

/// In-memory fit store with hit/store counters.
#[derive(Default)]
struct MemFitStore {
    fits: Mutex<HashMap<FitKey, FittedState>>,
    hits: AtomicU64,
    stores: AtomicU64,
}

impl FitStore for MemFitStore {
    fn load(
        &self,
        dataset_digest: u64,
        kind: SynthKind,
        epsilon: f64,
        seed_index: usize,
    ) -> Option<FittedState> {
        let key = (dataset_digest, kind.name(), epsilon.to_bits(), seed_index);
        let state = self.fits.lock().unwrap().get(&key).cloned();
        if state.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        state
    }

    fn save(
        &self,
        dataset_digest: u64,
        kind: SynthKind,
        epsilon: f64,
        seed_index: usize,
        state: &FittedState,
    ) {
        let key = (dataset_digest, kind.name(), epsilon.to_bits(), seed_index);
        self.fits.lock().unwrap().insert(key, state.clone());
        self.stores.fetch_add(1, Ordering::Relaxed);
    }
}

/// A store that serves deliberately wrong-variant states: restore must
/// fail, and the grid must silently refit instead of erroring.
struct SabotagedStore(MemFitStore);

impl FitStore for SabotagedStore {
    fn load(
        &self,
        dataset_digest: u64,
        kind: SynthKind,
        epsilon: f64,
        seed_index: usize,
    ) -> Option<FittedState> {
        self.0
            .load(dataset_digest, kind, epsilon, seed_index)
            .map(|state| match state {
                // Swap variants: hand PGM methods a GEM-shaped husk.
                FittedState::Pgm { domain, .. } => FittedState::Gem {
                    domain,
                    model: synrd_synth::GemState {
                        logits: vec![],
                        m: vec![],
                        v: vec![],
                        step: 0,
                    },
                },
                other => other,
            })
    }

    fn save(
        &self,
        dataset_digest: u64,
        kind: SynthKind,
        epsilon: f64,
        seed_index: usize,
        state: &FittedState,
    ) {
        self.0
            .save(dataset_digest, kind, epsilon, seed_index, state);
    }
}

fn shared_dataset(n: usize, seed: u64) -> Dataset {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let domain = Domain::new(vec![
        Attribute::binary("x"),
        Attribute::binary("y"),
        Attribute::ordinal("z", 3),
    ]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::with_capacity(domain, n);
    for _ in 0..n {
        let x = u32::from(rng.gen::<f64>() < 0.4);
        let y = if rng.gen::<f64>() < 0.8 { x } else { 1 - x };
        let z = rng.gen_range(0..3);
        ds.push_row(&[x, y, z]).unwrap();
    }
    ds
}

/// Two papers over the *same* generated dataset, asking different
/// questions of it (different findings, different benchmark ids).
struct MeanPaper;
struct ProportionPaper;

impl Publication for MeanPaper {
    fn dataset(&self) -> BenchmarkDataset {
        BenchmarkDataset::Saw2018
    }

    fn generate(&self, n: usize, seed: u64) -> Dataset {
        shared_dataset(n, seed)
    }

    fn findings(&self) -> Vec<Finding> {
        vec![Finding::new(
            1,
            "mean of z",
            FindingType::DescriptiveStatistics,
            Check::Tolerance { alpha: 0.5 },
            Box::new(|ds| Ok(vec![ds.mean_of(2).unwrap_or(0.0)])),
        )]
    }
}

impl Publication for ProportionPaper {
    fn dataset(&self) -> BenchmarkDataset {
        BenchmarkDataset::Jeong2021
    }

    fn generate(&self, n: usize, seed: u64) -> Dataset {
        shared_dataset(n, seed)
    }

    fn findings(&self) -> Vec<Finding> {
        vec![Finding::new(
            1,
            "x proportion",
            FindingType::DescriptiveStatistics,
            Check::Tolerance { alpha: 0.5 },
            Box::new(|ds| Ok(vec![ds.mean_of(0).unwrap_or(0.0)])),
        )]
    }
}

fn config() -> BenchmarkConfig {
    BenchmarkConfig {
        epsilons: vec![1.0],
        seeds: 2,
        bootstraps: 2,
        data_scale: 0.01,
        min_rows: 600,
        data_seed: 7,
        threads: 1,
        fit_threads: None,
        fit_timeout: None,
        restrict_privmrf: true,
        synthesizers: vec![SynthKind::Mst, SynthKind::Gem],
    }
}

#[test]
fn papers_sharing_a_dataset_share_every_fit() {
    let config = config();
    let store = MemFitStore::default();
    let expected_fits = (config.seeds * config.synthesizers.len() * config.epsilons.len()) as u64;

    // Baseline (no stores): the numbers every cached run must reproduce.
    let baseline_a = run_paper_with_stores(&MeanPaper, &config, None, None).unwrap();
    let baseline_b = run_paper_with_stores(&ProportionPaper, &config, None, None).unwrap();

    // Cold paper A: every (synth, ε, seed) fit happens once and is stored.
    let before = fits_performed();
    let report_a = run_paper_with_stores(&MeanPaper, &config, None, Some(&store)).unwrap();
    assert_eq!(fits_performed() - before, expected_fits, "cold run fits");
    assert_eq!(store.stores.load(Ordering::Relaxed), expected_fits);

    // Paper B shares the dataset: zero fits, everything served.
    let before = fits_performed();
    let report_b = run_paper_with_stores(&ProportionPaper, &config, None, Some(&store)).unwrap();
    assert_eq!(
        fits_performed() - before,
        0,
        "shared-dataset paper must refit nothing"
    );
    assert_eq!(store.hits.load(Ordering::Relaxed), expected_fits);

    // Warm rerun of paper A: zero fits too.
    let before = fits_performed();
    let report_a_warm = run_paper_with_stores(&MeanPaper, &config, None, Some(&store)).unwrap();
    assert_eq!(fits_performed() - before, 0, "warm rerun fits");

    // Served fits change nothing: bit-identical to the store-free runs.
    assert!(report_a.bitwise_eq(&baseline_a));
    assert!(report_a_warm.bitwise_eq(&baseline_a));
    assert!(report_b.bitwise_eq(&baseline_b));
}

#[test]
fn fit_cache_hits_across_ml_backends() {
    // ML backend selection is process-global and deliberately absent from
    // both `FittedState` and the fit-cache key: backends are bit-identical,
    // so a store populated under one backend must serve a run under the
    // other with zero refits and bit-identical reports. PATECTGAN is the
    // one synthesizer whose fit actually routes through the backend seam.
    use synrd_synth::ml_backend;
    let config = BenchmarkConfig {
        seeds: 1,
        synthesizers: vec![SynthKind::PateCtgan],
        ..config()
    };
    let store = MemFitStore::default();
    let expected_fits = (config.seeds * config.epsilons.len()) as u64;

    ml_backend::set_global(Some("cpu")).unwrap();
    let cpu_report = run_paper_with_stores(&MeanPaper, &config, None, Some(&store)).unwrap();
    assert_eq!(store.stores.load(Ordering::Relaxed), expected_fits);

    // Rerun on the SIMD backend where the CPU supports it (the test still
    // checks cross-run hits on machines without it, just cpu-to-cpu).
    let other = if ml_backend::select(Some("simd")).is_ok() {
        "simd"
    } else {
        "cpu"
    };
    ml_backend::set_global(Some(other)).unwrap();
    let before = fits_performed();
    let other_report = run_paper_with_stores(&MeanPaper, &config, None, Some(&store)).unwrap();
    ml_backend::set_global(Some("auto")).unwrap();

    assert_eq!(
        fits_performed() - before,
        0,
        "cpu-backend fits must serve a {other}-backend run"
    );
    assert_eq!(store.hits.load(Ordering::Relaxed), expected_fits);
    assert!(
        other_report.bitwise_eq(&cpu_report),
        "served fits must be backend-independent bit for bit"
    );
}

#[test]
fn fit_cache_hits_across_fit_thread_counts() {
    // The intra-fit thread allowance is throughput-only and deliberately
    // absent from both `FittedState` and the fit-cache key: fits are
    // bit-identical at any thread count, so a store populated by a
    // sequential run must serve a multi-threaded run (and vice versa) with
    // zero refits and bit-identical reports. MST + GEM exercise both the
    // mirror-descent and analytic-trainer parallel paths.
    let config = BenchmarkConfig {
        fit_threads: Some(1),
        ..config()
    };
    let store = MemFitStore::default();
    let expected_fits = (config.seeds * config.synthesizers.len() * config.epsilons.len()) as u64;

    let seq_report = run_paper_with_stores(&MeanPaper, &config, None, Some(&store)).unwrap();
    assert_eq!(store.stores.load(Ordering::Relaxed), expected_fits);

    let mt_config = BenchmarkConfig {
        fit_threads: Some(4),
        ..config
    };
    let before = fits_performed();
    let mt_report = run_paper_with_stores(&MeanPaper, &mt_config, None, Some(&store)).unwrap();
    assert_eq!(
        fits_performed() - before,
        0,
        "sequential fits must serve a 4-thread run"
    );
    assert_eq!(store.hits.load(Ordering::Relaxed), expected_fits);
    assert!(
        mt_report.bitwise_eq(&seq_report),
        "served fits must be thread-count-independent bit for bit"
    );

    // And the reverse direction from a cold store: a 4-thread cold run must
    // produce bitwise the same states the sequential run stored.
    let cold_mt = MemFitStore::default();
    let cold_report = run_paper_with_stores(&MeanPaper, &mt_config, None, Some(&cold_mt)).unwrap();
    assert!(cold_report.bitwise_eq(&seq_report));
    let seq_fits = store.fits.lock().unwrap();
    let mt_fits = cold_mt.fits.lock().unwrap();
    assert_eq!(seq_fits.len(), mt_fits.len());
    for (key, state) in seq_fits.iter() {
        let other = &mt_fits[key];
        assert!(
            format!("{state:?}") == format!("{other:?}"),
            "fitted state for {key:?} differs across fit-thread counts"
        );
    }
}

#[test]
fn unrestorable_states_degrade_to_refits() {
    let config = config();
    let store = SabotagedStore(MemFitStore::default());
    let baseline = run_paper_with_stores(&MeanPaper, &config, None, None).unwrap();
    let cold = run_paper_with_stores(&MeanPaper, &config, None, Some(&store)).unwrap();

    // Warm rerun: MST states come back variant-swapped and fail to
    // restore, so MST refits; GEM states are untouched and serve.
    let before = fits_performed();
    let warm = run_paper_with_stores(&MeanPaper, &config, None, Some(&store)).unwrap();
    let mst_fits = (config.seeds * config.epsilons.len()) as u64;
    assert_eq!(
        fits_performed() - before,
        mst_fits,
        "only the sabotaged synthesizer refits"
    );
    assert!(cold.bitwise_eq(&baseline));
    assert!(warm.bitwise_eq(&baseline));
}
