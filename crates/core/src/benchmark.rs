//! The benchmark driver: the k-seeds × B-bootstraps × ε-grid × synthesizer
//! evaluation loop of §4.2/§7, parallelized over (synthesizer, ε) cells.

use crate::error::{Result, SynrdError};
use crate::finding::FindingType;
use crate::publication::Publication;
use std::sync::mpsc;
use std::time::{Duration, Instant};
use synrd_dp::derive_seed_indexed;
use synrd_synth::{SynthError, SynthKind};

/// The paper's ε grid: e⁻³, e⁻², e⁻¹, e⁰, e¹, e².
pub fn paper_epsilons() -> Vec<f64> {
    (-3..=2).map(|k| (k as f64).exp()).collect()
}

/// Execution configuration.
#[derive(Debug, Clone)]
pub struct BenchmarkConfig {
    /// ε values to sweep.
    pub epsilons: Vec<f64>,
    /// Training seeds per (synth, ε) cell (paper: k = 10).
    pub seeds: usize,
    /// Sample draws per trained synthesizer (paper: B = 25).
    pub bootstraps: usize,
    /// Multiplier on each paper's sample size (1.0 = paper scale).
    pub data_scale: f64,
    /// Floor on the scaled sample size.
    pub min_rows: usize,
    /// Seed of the "real" data generation.
    pub data_seed: u64,
    /// Worker threads for the cell grid.
    pub threads: usize,
    /// Per-fit wall-clock budget (the paper's 6-hour rule); exceeding it on
    /// the first seed crosshatches the cell.
    pub fit_timeout: Option<Duration>,
    /// Restrict PrivMRF to ε = e⁰ (the paper: "too slow to be viable; we
    /// report results only for ε = e⁰").
    pub restrict_privmrf: bool,
    /// Synthesizers to run.
    pub synthesizers: Vec<SynthKind>,
}

impl BenchmarkConfig {
    /// Laptop-scale defaults: 1/10 sample sizes with a floor of 2500 rows
    /// (rare-outcome findings such as Assari's 4% mortality need enough
    /// events to be stable even under the bootstrap control), k = 3, B = 5.
    pub fn quick() -> BenchmarkConfig {
        BenchmarkConfig {
            epsilons: paper_epsilons(),
            seeds: 3,
            bootstraps: 5,
            data_scale: 0.1,
            min_rows: 2_500,
            data_seed: 20230531,
            threads: available_threads(),
            fit_timeout: Some(Duration::from_secs(300)),
            restrict_privmrf: true,
            synthesizers: SynthKind::ALL.to_vec(),
        }
    }

    /// The paper's full protocol: k = 10, B = 25, paper sample sizes.
    pub fn paper() -> BenchmarkConfig {
        BenchmarkConfig {
            seeds: 10,
            bootstraps: 25,
            data_scale: 1.0,
            fit_timeout: Some(Duration::from_secs(6 * 3600)),
            ..BenchmarkConfig::quick()
        }
    }

    /// Scaled sample size for a paper: `scale × n`, floored at `min_rows`
    /// but never exceeding the paper's own sample size (small papers run at
    /// full size rather than being upsampled).
    pub fn rows_for(&self, paper_n: usize) -> usize {
        ((paper_n as f64 * self.data_scale).round() as usize)
            .max(self.min_rows)
            .min(paper_n)
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 16)
}

/// Why a cell has no parity numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum CellStatus {
    /// Parity computed normally.
    Ok,
    /// The synthesizer declined the dataset (domain too large etc.).
    Infeasible(String),
    /// The first fit exceeded the wall-clock budget.
    TimedOut,
    /// Excluded by configuration (e.g. PrivMRF off-ε cells).
    Skipped,
}

/// Result of one (synthesizer, ε) cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Parity per finding: fraction of (seed × draw) trials reproducing it.
    pub parity: Vec<f64>,
    /// Variance over seeds of the per-seed parity, per finding.
    pub seed_variance: Vec<f64>,
    /// Cell status.
    pub status: CellStatus,
    /// Wall-clock seconds of the first fit (0 when not fitted).
    pub fit_seconds: f64,
}

impl CellOutcome {
    fn unavailable(status: CellStatus, findings: usize, fit_seconds: f64) -> CellOutcome {
        CellOutcome {
            parity: vec![f64::NAN; findings],
            seed_variance: vec![f64::NAN; findings],
            status,
            fit_seconds,
        }
    }

    /// Mean parity over findings (NaN when unavailable).
    pub fn mean_parity(&self) -> f64 {
        mean_finite(&self.parity)
    }

    /// Mean seed-variance over findings.
    pub fn mean_variance(&self) -> f64 {
        mean_finite(&self.seed_variance)
    }
}

fn mean_finite(values: &[f64]) -> f64 {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        f64::NAN
    } else {
        finite.iter().sum::<f64>() / finite.len() as f64
    }
}

/// Everything Figure 3 needs for one paper.
#[derive(Debug, Clone)]
pub struct PaperReport {
    /// Machine id of the paper (e.g. "saw2018").
    pub paper_id: &'static str,
    /// Citation-style name.
    pub paper_name: &'static str,
    /// (id, name, type) per finding, in id order.
    pub findings: Vec<(u32, &'static str, FindingType)>,
    /// ε grid used.
    pub epsilons: Vec<f64>,
    /// Synthesizers, row order of `cells`.
    pub synthesizers: Vec<SynthKind>,
    /// `cells[synth][eps]`.
    pub cells: Vec<Vec<CellOutcome>>,
    /// "real, bootstrap" control row: per-finding parity under resampling
    /// of the real data.
    pub control: Vec<f64>,
    /// Rows of real data used.
    pub n_rows: usize,
}

/// Run the full grid for one publication.
///
/// # Errors
/// Fails if a finding cannot be evaluated on the *real* data (that would
/// make parity meaningless); synthetic-side failures are folded into parity.
pub fn run_paper(paper: &dyn Publication, config: &BenchmarkConfig) -> Result<PaperReport> {
    let n = config.rows_for(paper.dataset().paper_n());
    let real = paper.generate(n, config.data_seed);
    let findings = paper.findings();

    // Ground truth: every finding must evaluate on real data.
    let mut real_stats = Vec::with_capacity(findings.len());
    for f in &findings {
        let stats = f.evaluate(&real)?;
        if stats.iter().any(|v| !v.is_finite()) {
            return Err(SynrdError::UndefinedStatistic {
                finding: f.id,
                reason: "non-finite statistic on real data".to_string(),
            });
        }
        real_stats.push(stats);
    }

    // Control row: nonparametric bootstrap of the real data through the
    // same pipeline (the paper's Bayesian-bootstrap control; see
    // DESIGN.md §3 for the resampling-vs-weighting note).
    let control = control_row(paper, &real, &findings, &real_stats, config)?;

    // Cell grid, parallel over (synth, eps).
    let grid: Vec<(usize, usize)> = (0..config.synthesizers.len())
        .flat_map(|s| (0..config.epsilons.len()).map(move |e| (s, e)))
        .collect();
    let (tx, rx) = mpsc::channel::<(usize, usize, CellOutcome)>();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let real_ref = &real;
    let findings_ref = &findings;
    let real_stats_ref = &real_stats;

    crossbeam::thread::scope(|scope| {
        for _ in 0..config.threads.min(grid.len()).max(1) {
            let tx = tx.clone();
            let next = &next;
            let grid = &grid;
            scope.spawn(move |_| {
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= grid.len() {
                        break;
                    }
                    let (s_idx, e_idx) = grid[i];
                    let outcome = run_cell(
                        paper,
                        real_ref,
                        findings_ref,
                        real_stats_ref,
                        config,
                        config.synthesizers[s_idx],
                        config.epsilons[e_idx],
                    );
                    // The receiver lives until the scope ends.
                    let _ = tx.send((s_idx, e_idx, outcome));
                }
            });
        }
        drop(tx);
        let mut cells: Vec<Vec<CellOutcome>> = (0..config.synthesizers.len())
            .map(|_| {
                (0..config.epsilons.len())
                    .map(|_| CellOutcome::unavailable(CellStatus::Skipped, findings_ref.len(), 0.0))
                    .collect()
            })
            .collect();
        for (s, e, outcome) in rx.iter() {
            cells[s][e] = outcome;
        }
        cells
    })
    .map(|cells| PaperReport {
        paper_id: paper.dataset().id(),
        paper_name: paper.name(),
        findings: findings
            .iter()
            .map(|f| (f.id, f.name, f.kind))
            .collect(),
        epsilons: config.epsilons.clone(),
        synthesizers: config.synthesizers.clone(),
        cells,
        control,
        n_rows: n,
    })
    .map_err(|_| SynrdError::Config("worker thread panicked".to_string()))
}

/// One (synthesizer, ε) cell: k fits × B draws.
fn run_cell(
    paper: &dyn Publication,
    real: &synrd_data::Dataset,
    findings: &[crate::finding::Finding],
    real_stats: &[Vec<f64>],
    config: &BenchmarkConfig,
    kind: SynthKind,
    epsilon: f64,
) -> CellOutcome {
    // The paper: "PrivMRF was too slow to be viable; we report results only
    // for ε = e⁰".
    if config.restrict_privmrf && kind == SynthKind::PrivMrf && (epsilon - 1.0).abs() > 1e-9 {
        return CellOutcome::unavailable(CellStatus::Skipped, findings.len(), 0.0);
    }
    let privacy = kind.native_privacy(epsilon, real.n_rows());
    let mut per_seed_parity: Vec<Vec<f64>> = Vec::with_capacity(config.seeds);
    let mut first_fit_seconds = 0.0f64;

    for seed_idx in 0..config.seeds {
        let mut synth = kind.build();
        let fit_seed = derive_seed_indexed(config.data_seed, "fit", seed_idx as u64);
        let started = Instant::now();
        match synth.fit(real, privacy, fit_seed) {
            Ok(()) => {}
            Err(SynthError::Infeasible { reason }) => {
                return CellOutcome::unavailable(
                    CellStatus::Infeasible(reason),
                    findings.len(),
                    started.elapsed().as_secs_f64(),
                );
            }
            Err(_) => {
                // Non-feasibility fit failure: count as zero parity for this
                // seed rather than crashing the grid.
                per_seed_parity.push(vec![0.0; findings.len()]);
                continue;
            }
        }
        let fit_seconds = started.elapsed().as_secs_f64();
        if seed_idx == 0 {
            first_fit_seconds = fit_seconds;
            if let Some(budget) = config.fit_timeout {
                if fit_seconds > budget.as_secs_f64() {
                    return CellOutcome::unavailable(
                        CellStatus::TimedOut,
                        findings.len(),
                        fit_seconds,
                    );
                }
            }
        }

        let mut holds = vec![0.0f64; findings.len()];
        for b in 0..config.bootstraps {
            let draw_seed =
                derive_seed_indexed(fit_seed, "draw", (seed_idx * config.bootstraps + b) as u64);
            let Ok(sample) = synth.sample(real.n_rows(), draw_seed) else {
                continue; // counts as not reproduced for every finding
            };
            for (fi, finding) in findings.iter().enumerate() {
                let reproduced = match finding.evaluate(&sample) {
                    Ok(stats) => finding.reproduced(&real_stats[fi], &stats),
                    Err(_) => false,
                };
                if reproduced {
                    holds[fi] += 1.0;
                }
            }
        }
        per_seed_parity.push(
            holds
                .iter()
                .map(|h| h / config.bootstraps as f64)
                .collect(),
        );
    }
    let _ = paper; // paper identity not needed here beyond documentation

    let k = per_seed_parity.len().max(1) as f64;
    let parity: Vec<f64> = (0..findings.len())
        .map(|fi| per_seed_parity.iter().map(|s| s[fi]).sum::<f64>() / k)
        .collect();
    let seed_variance: Vec<f64> = (0..findings.len())
        .map(|fi| {
            let mean = parity[fi];
            per_seed_parity
                .iter()
                .map(|s| (s[fi] - mean).powi(2))
                .sum::<f64>()
                / k
        })
        .collect();
    CellOutcome {
        parity,
        seed_variance,
        status: CellStatus::Ok,
        fit_seconds: first_fit_seconds,
    }
}

/// The "real, bootstrap" control row.
fn control_row(
    _paper: &dyn Publication,
    real: &synrd_data::Dataset,
    findings: &[crate::finding::Finding],
    real_stats: &[Vec<f64>],
    config: &BenchmarkConfig,
) -> Result<Vec<f64>> {
    let replicates = (config.bootstraps * config.seeds.max(1)).max(10);
    let mut rng = synrd_dp::rng_for(config.data_seed, "bootstrap-control");
    let mut holds = vec![0.0f64; findings.len()];
    for _ in 0..replicates {
        let resample = real.bootstrap_sample(real.n_rows(), &mut rng);
        for (fi, finding) in findings.iter().enumerate() {
            let reproduced = match finding.evaluate(&resample) {
                Ok(stats) => finding.reproduced(&real_stats[fi], &stats),
                Err(_) => false,
            };
            if reproduced {
                holds[fi] += 1.0;
            }
        }
    }
    Ok(holds.iter().map(|h| h / replicates as f64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_grid_matches_paper() {
        let eps = paper_epsilons();
        assert_eq!(eps.len(), 6);
        assert!((eps[3] - 1.0).abs() < 1e-12); // e^0
        assert!((eps[4] - std::f64::consts::E).abs() < 1e-12);
    }

    #[test]
    fn config_scaling() {
        let config = BenchmarkConfig::quick();
        assert_eq!(config.rows_for(293_581), 29_358);
        assert_eq!(config.rows_for(20_000), 2_500); // floor
        assert_eq!(config.rows_for(1_762), 1_762); // never upsampled

        let paper = BenchmarkConfig::paper();
        assert_eq!(paper.rows_for(293_581), 293_581);
        assert_eq!(paper.seeds, 10);
        assert_eq!(paper.bootstraps, 25);
    }

    #[test]
    fn mean_parity_skips_nan() {
        let cell = CellOutcome {
            parity: vec![1.0, f64::NAN, 0.5],
            seed_variance: vec![0.0, f64::NAN, 0.0],
            status: CellStatus::Ok,
            fit_seconds: 0.0,
        };
        assert!((cell.mean_parity() - 0.75).abs() < 1e-12);
    }
}
