//! The benchmark driver: the k-seeds × B-bootstraps × ε-grid × synthesizer
//! evaluation loop of §4.2/§7, parallelized over (synthesizer, ε) cells
//! with rayon.
//!
//! Every trial seed is a word of a ChaCha8 keystream — see
//! [`synrd_dp::grid_seed`]. Fit seeds are keyed by
//! `(master seed, dataset content digest, synthesizer, ε)`: a fitted model
//! is a pure function of the data it saw, never of which paper asked, so
//! papers sharing a dataset share fits (and the fit cache can serve one
//! paper's fit to another bit-for-bit). Draw seeds stay keyed by
//! `(master seed, paper, synthesizer, ε)`. Either way a cell's outcome is
//! a pure function of its identity: the parallel grid is byte-identical to
//! the sequential one (asserted by `PaperReport::bitwise_eq` in the
//! integration tests), and any sub-grid rerun reproduces the full run's
//! numbers exactly.

use crate::error::{Result, SynrdError};
use crate::finding::FindingType;
use crate::publication::Publication;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use synrd_dp::grid_seed;
use synrd_synth::{FitContext, FittedState, SynthError, SynthKind, Synthesizer};

/// Process-wide count of synthesizer fits performed by the grid driver.
///
/// Purely observational: the determinism/caching tests assert that a
/// warm-cache rerun performs *zero* fits by reading this counter before and
/// after a run. Fits performed outside the grid (e.g. `fig1`'s single
/// visual-finding fit) are not counted.
static GRID_FITS: AtomicU64 = AtomicU64::new(0);

/// Total synthesizer fits the grid driver has performed in this process.
pub fn fits_performed() -> u64 {
    GRID_FITS.load(Ordering::Relaxed)
}

// The sampling-side mirrors of the fit counter (batched generation passes
// and total rows generated across every synthesizer), re-exported so grid
// telemetry and tests read all process counters from one place.
pub use synrd_synth::{rows_sampled, sampling_passes};

/// The paper's ε grid: e⁻³, e⁻², e⁻¹, e⁰, e¹, e².
pub fn paper_epsilons() -> Vec<f64> {
    (-3..=2).map(|k| (k as f64).exp()).collect()
}

/// Execution configuration.
///
/// The ML backend (`synrd_synth::ml_backend`) is deliberately *not* a
/// field here: backends are bit-identical, so backend choice changes
/// throughput only, never results. Keeping it process-global keeps the
/// config fingerprint — and therefore every cached fit and result digest
/// — backend-free.
#[derive(Debug, Clone)]
pub struct BenchmarkConfig {
    /// ε values to sweep.
    pub epsilons: Vec<f64>,
    /// Training seeds per (synth, ε) cell (paper: k = 10).
    pub seeds: usize,
    /// Sample draws per trained synthesizer (paper: B = 25).
    pub bootstraps: usize,
    /// Multiplier on each paper's sample size (1.0 = paper scale).
    pub data_scale: f64,
    /// Floor on the scaled sample size.
    pub min_rows: usize,
    /// Seed of the "real" data generation.
    pub data_seed: u64,
    /// Worker threads for the cell grid.
    pub threads: usize,
    /// Intra-fit thread allowance per cell: `None` derives it from the core
    /// budget (`threads / live cells`, floored at 1), `Some(n)` pins it.
    ///
    /// Throughput-only, like the ML backend: every fit is bit-identical at
    /// any thread count, so this never enters the config fingerprint, the
    /// fit-cache fingerprint, or any fitted state.
    pub fit_threads: Option<usize>,
    /// Per-fit wall-clock budget (the paper's 6-hour rule); exceeding it on
    /// the first seed crosshatches the cell.
    pub fit_timeout: Option<Duration>,
    /// Restrict PrivMRF to ε = e⁰ (the paper: "too slow to be viable; we
    /// report results only for ε = e⁰").
    pub restrict_privmrf: bool,
    /// Synthesizers to run.
    pub synthesizers: Vec<SynthKind>,
}

impl BenchmarkConfig {
    /// Laptop-scale defaults: 1/10 sample sizes with a floor of 2500 rows
    /// (rare-outcome findings such as Assari's 4% mortality need enough
    /// events to be stable even under the bootstrap control), k = 3, B = 5.
    pub fn quick() -> BenchmarkConfig {
        BenchmarkConfig {
            epsilons: paper_epsilons(),
            seeds: 3,
            bootstraps: 5,
            data_scale: 0.1,
            min_rows: 2_500,
            data_seed: 20230531,
            threads: available_threads(),
            fit_threads: None,
            fit_timeout: Some(Duration::from_secs(300)),
            restrict_privmrf: true,
            synthesizers: SynthKind::ALL.to_vec(),
        }
    }

    /// The paper's full protocol: k = 10, B = 25, paper sample sizes.
    pub fn paper() -> BenchmarkConfig {
        BenchmarkConfig {
            seeds: 10,
            bootstraps: 25,
            data_scale: 1.0,
            fit_timeout: Some(Duration::from_secs(6 * 3600)),
            ..BenchmarkConfig::quick()
        }
    }

    /// Scaled sample size for a paper: `scale × n`, floored at `min_rows`
    /// but never exceeding the paper's own sample size (small papers run at
    /// full size rather than being upsampled).
    pub fn rows_for(&self, paper_n: usize) -> usize {
        ((paper_n as f64 * self.data_scale).round() as usize)
            .max(self.min_rows)
            .min(paper_n)
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 16)
}

/// Two-level core budget: the grid spends `config.threads` workers on
/// concurrent cells (level 1), and each in-flight cell receives an intra-fit
/// thread allowance carved from the same pool (level 2). With fewer cells
/// than cores the leftover cores go into the fits; with more cells than
/// cores every fit runs sequentially, exactly as before.
///
/// The allowance is a pure function of the config shape and the batch size —
/// never of scheduling — and intra-fit parallelism is bit-identical at any
/// thread count, so the budget can only change wall-clock time, never
/// results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreBudget {
    total: usize,
    fixed: Option<usize>,
}

impl CoreBudget {
    /// Budget for a run: `config.threads` cores, with `config.fit_threads`
    /// optionally pinning the per-fit allowance.
    pub fn from_config(config: &BenchmarkConfig) -> CoreBudget {
        CoreBudget {
            total: config.threads.max(1),
            fixed: config.fit_threads,
        }
    }

    /// Per-fit thread allowance when `cells` cells are in the batch: the
    /// pinned count if one was configured, otherwise
    /// `total / min(total, cells)` floored at 1 (cells beyond the worker
    /// count queue rather than run, so they never dilute the allowance).
    pub fn fit_threads(&self, cells: usize) -> usize {
        match self.fixed {
            Some(n) => n.max(1),
            None => (self.total / self.total.min(cells).max(1)).max(1),
        }
    }
}

/// Process-wide cache of grid thread pools, one per thread count: the grid
/// drivers run many batches per process (per paper, per shard) and pool
/// construction is not free, so `execute_cells` reuses one pool per count
/// instead of building a fresh pool per invocation.
fn shared_pool(threads: usize) -> std::sync::Arc<rayon::ThreadPool> {
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex, OnceLock};
    static POOLS: OnceLock<Mutex<HashMap<usize, Arc<rayon::ThreadPool>>>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = pools.lock().expect("grid pool cache poisoned");
    Arc::clone(map.entry(threads).or_insert_with(|| {
        Arc::new(
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool construction cannot fail"),
        )
    }))
}

/// Why a cell has no parity numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum CellStatus {
    /// Parity computed normally.
    Ok,
    /// The synthesizer declined the dataset (domain too large etc.).
    Infeasible(String),
    /// The first fit exceeded the wall-clock budget.
    TimedOut,
    /// Excluded by configuration (e.g. PrivMRF off-ε cells).
    Skipped,
}

/// Result of one (synthesizer, ε) cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Parity per finding: fraction of (seed × draw) trials reproducing it.
    pub parity: Vec<f64>,
    /// Variance over seeds of the per-seed parity, per finding.
    pub seed_variance: Vec<f64>,
    /// Cell status.
    pub status: CellStatus,
    /// Wall-clock seconds of the first fit (0 when not fitted).
    pub fit_seconds: f64,
}

impl CellOutcome {
    fn unavailable(status: CellStatus, findings: usize, fit_seconds: f64) -> CellOutcome {
        CellOutcome {
            parity: vec![f64::NAN; findings],
            seed_variance: vec![f64::NAN; findings],
            status,
            fit_seconds,
        }
    }

    /// Mean parity over findings (NaN when unavailable).
    pub fn mean_parity(&self) -> f64 {
        mean_finite(&self.parity)
    }

    /// Mean seed-variance over findings.
    pub fn mean_variance(&self) -> f64 {
        mean_finite(&self.seed_variance)
    }

    /// Exact equality of the statistical payload, comparing floats by bit
    /// pattern (so NaN cells from skipped / infeasible statuses compare
    /// equal rather than poisoning the comparison). `fit_seconds` is
    /// wall-clock telemetry, not a statistic, and is deliberately excluded.
    pub fn bitwise_eq(&self, other: &CellOutcome) -> bool {
        bits_eq(&self.parity, &other.parity)
            && bits_eq(&self.seed_variance, &other.seed_variance)
            && self.status == other.status
    }
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn mean_finite(values: &[f64]) -> f64 {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        f64::NAN
    } else {
        finite.iter().sum::<f64>() / finite.len() as f64
    }
}

/// Everything Figure 3 needs for one paper.
#[derive(Debug, Clone)]
pub struct PaperReport {
    /// Machine id of the paper (e.g. "saw2018").
    pub paper_id: &'static str,
    /// Citation-style name.
    pub paper_name: &'static str,
    /// (id, name, type) per finding, in id order.
    pub findings: Vec<(u32, &'static str, FindingType)>,
    /// ε grid used.
    pub epsilons: Vec<f64>,
    /// Synthesizers, row order of `cells`.
    pub synthesizers: Vec<SynthKind>,
    /// `cells[synth][eps]`.
    pub cells: Vec<Vec<CellOutcome>>,
    /// "real, bootstrap" control row: per-finding parity under resampling
    /// of the real data.
    pub control: Vec<f64>,
    /// Rows of real data used.
    pub n_rows: usize,
}

impl PaperReport {
    /// Exact equality of everything the report *claims* — findings, grid
    /// layout, per-cell parity/variance/status (bit-for-bit on floats) and
    /// the control row. Per-cell `fit_seconds` timing telemetry is excluded.
    /// This is what the parallel-vs-sequential determinism test asserts.
    pub fn bitwise_eq(&self, other: &PaperReport) -> bool {
        self.paper_id == other.paper_id
            && self.paper_name == other.paper_name
            && self.findings == other.findings
            && bits_eq(&self.epsilons, &other.epsilons)
            && self.synthesizers == other.synthesizers
            && self.cells.len() == other.cells.len()
            && self.cells.iter().zip(&other.cells).all(|(row_a, row_b)| {
                row_a.len() == row_b.len() && row_a.iter().zip(row_b).all(|(a, b)| a.bitwise_eq(b))
            })
            && bits_eq(&self.control, &other.control)
            && self.n_rows == other.n_rows
    }
}

/// A persistent store the grid driver consults before fitting a cell and
/// writes back into afterwards.
///
/// Implementations (e.g. `synrd-store`'s content-addressed disk cache) are
/// responsible for keying cells by everything that determines their outcome
/// *besides* the coordinates passed here — i.e. the [`BenchmarkConfig`]
/// fingerprint. A cell is a pure function of
/// `(config fingerprint, paper id, synthesizer, ε)`, so a correct store
/// makes reruns incremental without changing a single bit of the results.
///
/// Both methods are best-effort: `load` returning `None` means "compute it",
/// and `save` failures must not fail the run (implementations should count
/// them instead).
pub trait CellStore: Sync {
    /// A previously stored outcome for this cell, if any.
    fn load(&self, paper_id: &str, kind: SynthKind, epsilon: f64) -> Option<CellOutcome>;

    /// Persist a freshly computed outcome for this cell.
    fn save(&self, paper_id: &str, kind: SynthKind, epsilon: f64, cell: &CellOutcome);
}

/// A persistent store of *fitted models*, consulted before every individual
/// fit the way [`CellStore`] is consulted before every cell.
///
/// Fits are keyed by the **dataset content digest**
/// ([`synrd_data::Dataset::content_digest`]), not by paper id: a fitted
/// model is a pure function of `(data, privacy, fit seed)`, and fit seeds
/// are themselves dataset-keyed, so two papers over the same generated
/// dataset share every fit. Implementations key on everything else that
/// determines the fit (the master seed) internally.
///
/// Both methods are best-effort: `load` returning `None` (including for
/// corrupt or truncated entries) means "fit it", and `save` failures must
/// not fail the run.
pub trait FitStore: Sync {
    /// A previously stored fit for this coordinate, if any.
    fn load(
        &self,
        dataset_digest: u64,
        kind: SynthKind,
        epsilon: f64,
        seed_index: usize,
    ) -> Option<FittedState>;

    /// Persist a freshly fitted model for this coordinate.
    fn save(
        &self,
        dataset_digest: u64,
        kind: SynthKind,
        epsilon: f64,
        seed_index: usize,
        state: &FittedState,
    );
}

/// One shard of a distributed grid run: this invocation owns every global
/// cell index `g` with `g % count == index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    index: usize,
    count: usize,
}

impl Shard {
    /// Shard `index` of `count`.
    ///
    /// # Errors
    /// `count` must be at least 1 and `index < count`.
    pub fn new(index: usize, count: usize) -> Result<Shard> {
        if count == 0 || index >= count {
            return Err(SynrdError::Config(format!(
                "invalid shard {index}/{count}: need 0 <= index < count"
            )));
        }
        Ok(Shard { index, count })
    }

    /// This shard's index.
    pub fn index(self) -> usize {
        self.index
    }

    /// Total number of shards.
    pub fn count(self) -> usize {
        self.count
    }

    /// Whether this shard owns global cell index `g`.
    pub fn owns(self, g: usize) -> bool {
        g % self.count == self.index
    }
}

/// What a sharded run did — how the global cell list split and how much of
/// this shard's share was already in the store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardSummary {
    /// Cells in the full (paper × synthesizer × ε) grid.
    pub cells_total: usize,
    /// Cells owned by this shard.
    pub cells_owned: usize,
    /// Owned cells computed (and stored) by this invocation.
    pub cells_computed: usize,
    /// Owned cells already present in the store.
    pub cells_cached: usize,
}

/// Per-paper ground truth shared by every execution mode: the generated
/// real dataset, the findings, and their statistics on the real data.
struct PaperGround {
    real: synrd_data::Dataset,
    findings: Vec<crate::finding::Finding>,
    real_stats: Vec<Vec<f64>>,
    n: usize,
    /// Content digest of `real` — the fit-seed/fit-cache key component.
    dataset_digest: u64,
    /// The digest as the string keying the fit-seed keystream.
    dataset_key: String,
}

/// Generate the real data and evaluate every finding on it.
///
/// # Errors
/// Every finding must evaluate (finitely) on the real data — a paper whose
/// ground truth is undefined cannot be scored for parity.
fn ground_truth(paper: &dyn Publication, config: &BenchmarkConfig) -> Result<PaperGround> {
    let n = config.rows_for(paper.dataset().paper_n());
    let real = paper.generate(n, config.data_seed);
    let findings = paper.findings();
    let mut real_stats = Vec::with_capacity(findings.len());
    for f in &findings {
        let stats = f.evaluate(&real)?;
        if stats.iter().any(|v| !v.is_finite()) {
            return Err(SynrdError::UndefinedStatistic {
                finding: f.id,
                reason: "non-finite statistic on real data".to_string(),
            });
        }
        real_stats.push(stats);
    }
    let dataset_digest = real.content_digest();
    Ok(PaperGround {
        real,
        findings,
        real_stats,
        n,
        dataset_digest,
        dataset_key: format!("ds-{dataset_digest:016x}"),
    })
}

/// Execute `f` over `coords`, parallel when `config.threads > 1`, containing
/// worker panics as a per-paper error so a multi-paper sweep can keep going
/// (fig3/fig4 print-and-continue). Each cell's seeds come from its own
/// ChaCha8 keystream, so the schedule cannot influence the numbers;
/// `config.threads <= 1` forces the sequential path (used by tests to
/// assert bitwise equality with the parallel one).
fn execute_cells<F>(
    coords: &[(usize, usize)],
    config: &BenchmarkConfig,
    f: F,
) -> Result<Vec<CellOutcome>>
where
    F: Fn(&(usize, usize)) -> CellOutcome + Sync,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if config.threads > 1 {
            shared_pool(config.threads).install(|| coords.par_iter().map(&f).collect())
        } else {
            coords.iter().map(&f).collect()
        }
    }))
    .map_err(|payload| {
        let detail = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        SynrdError::Config(format!("worker thread panicked: {detail}"))
    })
}

/// The full (synth, ε) coordinate list in row-major order.
fn full_grid(config: &BenchmarkConfig) -> Vec<(usize, usize)> {
    (0..config.synthesizers.len())
        .flat_map(|s| (0..config.epsilons.len()).map(move |e| (s, e)))
        .collect()
}

/// Shape row-major outcomes into the `cells[synth][eps]` matrix.
fn into_rows(outcomes: Vec<CellOutcome>, config: &BenchmarkConfig) -> Vec<Vec<CellOutcome>> {
    if config.epsilons.is_empty() {
        vec![Vec::new(); config.synthesizers.len()]
    } else {
        outcomes
            .chunks(config.epsilons.len())
            .map(<[CellOutcome]>::to_vec)
            .collect()
    }
}

fn report_from(
    paper: &dyn Publication,
    config: &BenchmarkConfig,
    ground: &PaperGround,
    control: Vec<f64>,
    cells: Vec<Vec<CellOutcome>>,
) -> PaperReport {
    PaperReport {
        paper_id: paper.dataset().id(),
        paper_name: paper.name(),
        findings: ground
            .findings
            .iter()
            .map(|f| (f.id, f.name, f.kind))
            .collect(),
        epsilons: config.epsilons.clone(),
        synthesizers: config.synthesizers.clone(),
        cells,
        control,
        n_rows: ground.n,
    }
}

/// Run the full grid for one publication.
///
/// # Errors
/// Fails if a finding cannot be evaluated on the *real* data (that would
/// make parity meaningless); synthetic-side failures are folded into parity.
pub fn run_paper(paper: &dyn Publication, config: &BenchmarkConfig) -> Result<PaperReport> {
    run_paper_with(paper, config, None)
}

/// [`run_paper`] with an optional persistent cell store: each cell is looked
/// up before fitting and written back after. Results are bit-identical with
/// and without a store — every cell is a pure function of
/// `(master seed, paper, synthesizer, ε)` via [`synrd_dp::grid_seed`].
///
/// # Errors
/// Same contract as [`run_paper`].
pub fn run_paper_with(
    paper: &dyn Publication,
    config: &BenchmarkConfig,
    store: Option<&dyn CellStore>,
) -> Result<PaperReport> {
    run_paper_with_stores(paper, config, store, None)
}

/// [`run_paper_with`] plus an optional [`FitStore`]: inside every cell that
/// is not served whole from the cell store, each individual fit is looked
/// up before fitting and written back after. Results are bit-identical
/// with and without either store.
///
/// # Errors
/// Same contract as [`run_paper`].
pub fn run_paper_with_stores(
    paper: &dyn Publication,
    config: &BenchmarkConfig,
    store: Option<&dyn CellStore>,
    fits: Option<&dyn FitStore>,
) -> Result<PaperReport> {
    let ground = ground_truth(paper, config)?;

    // Control row: nonparametric bootstrap of the real data through the
    // same pipeline (the paper's Bayesian-bootstrap control; see
    // DESIGN.md §3 for the resampling-vs-weighting note).
    let control = control_row(paper, &ground, config)?;

    let grid = full_grid(config);
    let paper_id = paper.dataset().id();
    let fit_threads = CoreBudget::from_config(config).fit_threads(grid.len());
    let cell = |&(s_idx, e_idx): &(usize, usize)| -> CellOutcome {
        let kind = config.synthesizers[s_idx];
        let epsilon = config.epsilons[e_idx];
        if let Some(st) = store {
            if let Some(hit) = st.load(paper_id, kind, epsilon) {
                return hit;
            }
        }
        let out = run_cell(paper_id, &ground, config, kind, epsilon, fits, fit_threads);
        if let Some(st) = store {
            st.save(paper_id, kind, epsilon, &out);
        }
        out
    };
    let outcomes = execute_cells(&grid, config, cell)?;
    let cells = into_rows(outcomes, config);
    Ok(report_from(paper, config, &ground, control, cells))
}

/// Run every paper in order through [`run_paper_with`], pairing each result
/// with the paper's display name so sweeps can print-and-continue.
pub fn run_grid(
    papers: &[Box<dyn Publication>],
    config: &BenchmarkConfig,
    store: Option<&dyn CellStore>,
) -> Vec<(&'static str, Result<PaperReport>)> {
    run_grid_with_stores(papers, config, store, None)
}

/// [`run_grid`] plus an optional [`FitStore`] (see
/// [`run_paper_with_stores`]). Because fits are keyed by dataset content,
/// papers sharing a dataset in one sweep fit each
/// `(synthesizer, ε, seed)` once and reuse it everywhere else.
pub fn run_grid_with_stores(
    papers: &[Box<dyn Publication>],
    config: &BenchmarkConfig,
    store: Option<&dyn CellStore>,
    fits: Option<&dyn FitStore>,
) -> Vec<(&'static str, Result<PaperReport>)> {
    papers
        .iter()
        .map(|p| {
            (
                p.name(),
                run_paper_with_stores(p.as_ref(), config, store, fits),
            )
        })
        .collect()
}

/// Compute (and persist) only the cells owned by `shard` out of the global
/// (paper × synthesizer × ε) cell list, in the fixed order given by
/// `papers`. Owned cells already present in the store are not recomputed.
///
/// Global cell indices are
/// `paper_index · (S·E) + synth_index · E + eps_index`, so the partition is
/// a pure function of `(shard, papers order, config shape)`: every cell is
/// owned by exactly one of the `n` shards, and merging the `n` shard stores
/// yields the complete grid (see `synrd-store`'s merge + `assemble_report`).
///
/// # Errors
/// Ground-truth failures propagate, as do worker panics.
pub fn run_grid_sharded(
    papers: &[Box<dyn Publication>],
    config: &BenchmarkConfig,
    store: &dyn CellStore,
    shard: Shard,
) -> Result<ShardSummary> {
    run_grid_sharded_with_stores(papers, config, store, None, shard)
}

/// [`run_grid_sharded`] plus an optional [`FitStore`] (see
/// [`run_paper_with_stores`]).
///
/// # Errors
/// Same contract as [`run_grid_sharded`].
pub fn run_grid_sharded_with_stores(
    papers: &[Box<dyn Publication>],
    config: &BenchmarkConfig,
    store: &dyn CellStore,
    fits: Option<&dyn FitStore>,
    shard: Shard,
) -> Result<ShardSummary> {
    let per_paper = config.synthesizers.len() * config.epsilons.len();
    let mut summary = ShardSummary {
        cells_total: per_paper * papers.len(),
        ..ShardSummary::default()
    };
    for (p_idx, paper) in papers.iter().enumerate() {
        let paper_id = paper.dataset().id();
        let owned: Vec<(usize, usize)> = full_grid(config)
            .into_iter()
            .filter(|&(s, e)| shard.owns(p_idx * per_paper + s * config.epsilons.len() + e))
            .collect();
        let owned_count = owned.len();
        summary.cells_owned += owned_count;
        let todo: Vec<(usize, usize)> = owned
            .into_iter()
            .filter(|&(s, e)| {
                store
                    .load(paper_id, config.synthesizers[s], config.epsilons[e])
                    .is_none()
            })
            .collect();
        summary.cells_cached += owned_count - todo.len();
        if todo.is_empty() {
            continue;
        }
        // Data generation and ground truth are only paid for papers that
        // actually have work in this shard.
        let ground = ground_truth(paper.as_ref(), config)?;
        let fit_threads = CoreBudget::from_config(config).fit_threads(todo.len());
        let cell = |&(s_idx, e_idx): &(usize, usize)| -> CellOutcome {
            let kind = config.synthesizers[s_idx];
            let epsilon = config.epsilons[e_idx];
            let out = run_cell(paper_id, &ground, config, kind, epsilon, fits, fit_threads);
            store.save(paper_id, kind, epsilon, &out);
            out
        };
        let computed = execute_cells(&todo, config, cell)?;
        summary.cells_computed += computed.len();
    }
    Ok(summary)
}

/// Rebuild a full [`PaperReport`] purely from stored cells plus the
/// (deterministic, fit-free) ground truth and control row — the merge step
/// after sharded runs. Bit-identical to a monolithic [`run_paper`] under
/// the same config.
///
/// # Errors
/// Every cell of the grid must be present in the store; a missing cell
/// names its coordinates (usually a shard that has not run or a config
/// fingerprint mismatch).
pub fn assemble_report(
    paper: &dyn Publication,
    config: &BenchmarkConfig,
    store: &dyn CellStore,
) -> Result<PaperReport> {
    let ground = ground_truth(paper, config)?;
    let control = control_row(paper, &ground, config)?;
    let paper_id = paper.dataset().id();
    let mut cells: Vec<Vec<CellOutcome>> = Vec::with_capacity(config.synthesizers.len());
    for &kind in &config.synthesizers {
        let mut row = Vec::with_capacity(config.epsilons.len());
        for &epsilon in &config.epsilons {
            let cell = store.load(paper_id, kind, epsilon).ok_or_else(|| {
                SynrdError::Config(format!(
                    "cell missing from store: {paper_id} / {} / eps={epsilon} \
                     (did every shard run under this exact config? note that \
                     timed-out cells are never persisted — rerun the owning \
                     shard with a larger fit budget)",
                    kind.name()
                ))
            })?;
            row.push(cell);
        }
        cells.push(row);
    }
    Ok(report_from(paper, config, &ground, control, cells))
}

/// One (synthesizer, ε) cell: k fits × B draws.
///
/// Fit `seed_idx` takes word `seed_idx` of the
/// `(master, dataset digest, synth, ε)` keystream — dataset-keyed, so the
/// fit (and the fit cache) is blind to which paper asked. Draw `b` of fit
/// `seed_idx` takes word `k + seed_idx·B + b` of the
/// `(master, paper, synth, ε)` keystream — so fit seeds do not depend on
/// `B`, and no seed is shared across cells.
///
/// With a [`FitStore`], each fit is looked up before fitting (a hit skips
/// the fit entirely and does not count in [`fits_performed`]) and written
/// back after; outcomes are bit-identical either way.
fn run_cell(
    paper_id: &str,
    ground: &PaperGround,
    config: &BenchmarkConfig,
    kind: SynthKind,
    epsilon: f64,
    fits: Option<&dyn FitStore>,
    fit_threads: usize,
) -> CellOutcome {
    let PaperGround {
        real,
        findings,
        real_stats,
        ..
    } = ground;
    // The paper: "PrivMRF was too slow to be viable; we report results only
    // for ε = e⁰".
    if config.restrict_privmrf && kind == SynthKind::PrivMrf && (epsilon - 1.0).abs() > 1e-9 {
        return CellOutcome::unavailable(CellStatus::Skipped, findings.len(), 0.0);
    }
    let privacy = kind.native_privacy(epsilon, real.n_rows());
    let mut per_seed_parity: Vec<Vec<f64>> = Vec::with_capacity(config.seeds);
    let mut first_fit_seconds = 0.0f64;

    for seed_idx in 0..config.seeds {
        let started = Instant::now();
        // Fit-cache lookup first: a usable stored fit skips the fit (and
        // the fit counter) entirely. A state that fails to restore is
        // treated as a miss — the refit below overwrites it.
        let restored: Option<Box<dyn Synthesizer>> = fits
            .and_then(|fs| fs.load(ground.dataset_digest, kind, epsilon, seed_idx))
            .and_then(|state| {
                let mut synth = kind.build();
                synth.restore_state(state).ok().map(|()| synth)
            });
        let freshly_fitted = restored.is_none();
        let synth = match restored {
            Some(synth) => synth,
            None => {
                let mut synth = kind.build();
                let fit_seed = grid_seed(
                    config.data_seed,
                    &ground.dataset_key,
                    kind.name(),
                    epsilon,
                    seed_idx as u64,
                );
                GRID_FITS.fetch_add(1, Ordering::Relaxed);
                let ctx = FitContext::with_threads(fit_threads);
                match synth.fit_with(real, privacy, fit_seed, ctx) {
                    Ok(()) => {}
                    Err(SynthError::Infeasible { reason }) => {
                        return CellOutcome::unavailable(
                            CellStatus::Infeasible(reason),
                            findings.len(),
                            started.elapsed().as_secs_f64(),
                        );
                    }
                    Err(_) => {
                        // Non-feasibility fit failure: count as zero parity
                        // for this seed rather than crashing the grid.
                        per_seed_parity.push(vec![0.0; findings.len()]);
                        continue;
                    }
                }
                synth
            }
        };
        let fit_seconds = started.elapsed().as_secs_f64();
        if seed_idx == 0 {
            first_fit_seconds = fit_seconds;
            if let Some(budget) = config.fit_timeout {
                if fit_seconds > budget.as_secs_f64() {
                    return CellOutcome::unavailable(
                        CellStatus::TimedOut,
                        findings.len(),
                        fit_seconds,
                    );
                }
            }
        }
        // Persist only after the timeout verdict: a cell that times out is
        // not cached (matching the cell cache's TimedOut rule), so its fit
        // must not be served to future runs either.
        if freshly_fitted {
            if let Some(fs) = fits {
                if let Some(state) = synth.fitted_state() {
                    fs.save(ground.dataset_digest, kind, epsilon, seed_idx, &state);
                }
            }
        }

        let mut holds = vec![0.0f64; findings.len()];
        for b in 0..config.bootstraps {
            let draw_seed = grid_seed(
                config.data_seed,
                paper_id,
                kind.name(),
                epsilon,
                (config.seeds + seed_idx * config.bootstraps + b) as u64,
            );
            let Ok(sample) = synth.sample(real.n_rows(), draw_seed) else {
                continue; // counts as not reproduced for every finding
            };
            for (fi, finding) in findings.iter().enumerate() {
                let reproduced = match finding.evaluate(&sample) {
                    Ok(stats) => finding.reproduced(&real_stats[fi], &stats),
                    Err(_) => false,
                };
                if reproduced {
                    holds[fi] += 1.0;
                }
            }
        }
        per_seed_parity.push(holds.iter().map(|h| h / config.bootstraps as f64).collect());
    }
    let k = per_seed_parity.len().max(1) as f64;
    let parity: Vec<f64> = (0..findings.len())
        .map(|fi| per_seed_parity.iter().map(|s| s[fi]).sum::<f64>() / k)
        .collect();
    let seed_variance: Vec<f64> = (0..findings.len())
        .map(|fi| {
            let mean = parity[fi];
            per_seed_parity
                .iter()
                .map(|s| (s[fi] - mean).powi(2))
                .sum::<f64>()
                / k
        })
        .collect();
    CellOutcome {
        parity,
        seed_variance,
        status: CellStatus::Ok,
        fit_seconds: first_fit_seconds,
    }
}

/// The "real, bootstrap" control row.
fn control_row(
    _paper: &dyn Publication,
    ground: &PaperGround,
    config: &BenchmarkConfig,
) -> Result<Vec<f64>> {
    let PaperGround {
        real,
        findings,
        real_stats,
        ..
    } = ground;
    let replicates = (config.bootstraps * config.seeds.max(1)).max(10);
    let mut rng = synrd_dp::rng_for(config.data_seed, "bootstrap-control");
    let mut holds = vec![0.0f64; findings.len()];
    for _ in 0..replicates {
        let resample = real.bootstrap_sample(real.n_rows(), &mut rng);
        for (fi, finding) in findings.iter().enumerate() {
            let reproduced = match finding.evaluate(&resample) {
                Ok(stats) => finding.reproduced(&real_stats[fi], &stats),
                Err(_) => false,
            };
            if reproduced {
                holds[fi] += 1.0;
            }
        }
    }
    Ok(holds.iter().map(|h| h / replicates as f64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_grid_matches_paper() {
        let eps = paper_epsilons();
        assert_eq!(eps.len(), 6);
        assert!((eps[3] - 1.0).abs() < 1e-12); // e^0
        assert!((eps[4] - std::f64::consts::E).abs() < 1e-12);
    }

    #[test]
    fn config_scaling() {
        let config = BenchmarkConfig::quick();
        assert_eq!(config.rows_for(293_581), 29_358);
        assert_eq!(config.rows_for(20_000), 2_500); // floor
        assert_eq!(config.rows_for(1_762), 1_762); // never upsampled

        let paper = BenchmarkConfig::paper();
        assert_eq!(paper.rows_for(293_581), 293_581);
        assert_eq!(paper.seeds, 10);
        assert_eq!(paper.bootstraps, 25);
    }

    #[test]
    fn mean_parity_skips_nan() {
        let cell = CellOutcome {
            parity: vec![1.0, f64::NAN, 0.5],
            seed_variance: vec![0.0, f64::NAN, 0.0],
            status: CellStatus::Ok,
            fit_seconds: 0.0,
        };
        assert!((cell.mean_parity() - 0.75).abs() < 1e-12);
    }

    /// A stand-in paper whose finding evaluates fine on real data (ground
    /// truth + control) but panics inside the grid, to exercise the
    /// panic-containment contract of `run_paper`.
    struct PanickyPaper;

    impl crate::publication::Publication for PanickyPaper {
        fn dataset(&self) -> synrd_data::BenchmarkDataset {
            synrd_data::BenchmarkDataset::Saw2018
        }

        fn generate(&self, n: usize, seed: u64) -> synrd_data::Dataset {
            use rand::{Rng, SeedableRng};
            let domain = synrd_data::Domain::new(vec![
                synrd_data::Attribute::binary("x"),
                synrd_data::Attribute::binary("y"),
            ]);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut ds = synrd_data::Dataset::with_capacity(domain, n);
            for _ in 0..n {
                let x = u32::from(rng.gen::<f64>() < 0.5);
                let y = if rng.gen::<f64>() < 0.8 { x } else { 1 - x };
                ds.push_row(&[x, y]).unwrap();
            }
            ds
        }

        fn findings(&self) -> Vec<crate::finding::Finding> {
            use std::sync::atomic::{AtomicUsize, Ordering};
            // run_paper evaluates on real data once for ground truth and
            // `max(bootstraps × seeds, 10)` times for the control row, all
            // before the grid; with seeds = bootstraps = 1 that is 11 calls.
            // Call 12 is the first grid cell.
            const PRE_GRID_CALLS: usize = 11;
            let calls = AtomicUsize::new(0);
            vec![crate::finding::Finding::new(
                1,
                "panics inside the grid",
                FindingType::DescriptiveStatistics,
                crate::finding::Check::Tolerance { alpha: 0.5 },
                Box::new(move |ds| {
                    if calls.fetch_add(1, Ordering::Relaxed) >= PRE_GRID_CALLS {
                        panic!("boom in cell");
                    }
                    Ok(vec![ds.mean_of(0).unwrap_or(0.0)])
                }),
            )]
        }
    }

    #[test]
    fn grid_panic_is_an_error_not_an_abort() {
        // A panic in one cell must come back as Err so a multi-paper sweep
        // (fig3/fig4 print-and-continue) survives — on both grid paths.
        for threads in [1usize, 4] {
            let config = BenchmarkConfig {
                epsilons: vec![1.0],
                seeds: 1,
                bootstraps: 1,
                data_scale: 0.01,
                min_rows: 400,
                data_seed: 5,
                threads,
                fit_threads: None,
                fit_timeout: None,
                restrict_privmrf: true,
                synthesizers: vec![SynthKind::Mst],
            };
            let err =
                run_paper(&PanickyPaper, &config).expect_err("cell panic must surface as an error");
            assert!(
                err.to_string().contains("panicked"),
                "unexpected error ({threads} threads): {err}"
            );
        }
    }
}
