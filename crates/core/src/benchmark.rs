//! The benchmark driver: the k-seeds × B-bootstraps × ε-grid × synthesizer
//! evaluation loop of §4.2/§7, parallelized over (synthesizer, ε) cells
//! with rayon.
//!
//! Every trial seed is a word of the cell's ChaCha8 keystream, keyed by
//! `(master seed, paper, synthesizer, ε)` — see [`synrd_dp::grid_seed`] —
//! so a cell's outcome is a pure function of its identity. The parallel
//! grid is therefore byte-identical to the sequential one (asserted by
//! `PaperReport::bitwise_eq` in the integration tests), and any sub-grid
//! rerun reproduces the full run's numbers exactly.

use crate::error::{Result, SynrdError};
use crate::finding::FindingType;
use crate::publication::Publication;
use rayon::prelude::*;
use std::time::{Duration, Instant};
use synrd_dp::grid_seed;
use synrd_synth::{SynthError, SynthKind};

/// The paper's ε grid: e⁻³, e⁻², e⁻¹, e⁰, e¹, e².
pub fn paper_epsilons() -> Vec<f64> {
    (-3..=2).map(|k| (k as f64).exp()).collect()
}

/// Execution configuration.
#[derive(Debug, Clone)]
pub struct BenchmarkConfig {
    /// ε values to sweep.
    pub epsilons: Vec<f64>,
    /// Training seeds per (synth, ε) cell (paper: k = 10).
    pub seeds: usize,
    /// Sample draws per trained synthesizer (paper: B = 25).
    pub bootstraps: usize,
    /// Multiplier on each paper's sample size (1.0 = paper scale).
    pub data_scale: f64,
    /// Floor on the scaled sample size.
    pub min_rows: usize,
    /// Seed of the "real" data generation.
    pub data_seed: u64,
    /// Worker threads for the cell grid.
    pub threads: usize,
    /// Per-fit wall-clock budget (the paper's 6-hour rule); exceeding it on
    /// the first seed crosshatches the cell.
    pub fit_timeout: Option<Duration>,
    /// Restrict PrivMRF to ε = e⁰ (the paper: "too slow to be viable; we
    /// report results only for ε = e⁰").
    pub restrict_privmrf: bool,
    /// Synthesizers to run.
    pub synthesizers: Vec<SynthKind>,
}

impl BenchmarkConfig {
    /// Laptop-scale defaults: 1/10 sample sizes with a floor of 2500 rows
    /// (rare-outcome findings such as Assari's 4% mortality need enough
    /// events to be stable even under the bootstrap control), k = 3, B = 5.
    pub fn quick() -> BenchmarkConfig {
        BenchmarkConfig {
            epsilons: paper_epsilons(),
            seeds: 3,
            bootstraps: 5,
            data_scale: 0.1,
            min_rows: 2_500,
            data_seed: 20230531,
            threads: available_threads(),
            fit_timeout: Some(Duration::from_secs(300)),
            restrict_privmrf: true,
            synthesizers: SynthKind::ALL.to_vec(),
        }
    }

    /// The paper's full protocol: k = 10, B = 25, paper sample sizes.
    pub fn paper() -> BenchmarkConfig {
        BenchmarkConfig {
            seeds: 10,
            bootstraps: 25,
            data_scale: 1.0,
            fit_timeout: Some(Duration::from_secs(6 * 3600)),
            ..BenchmarkConfig::quick()
        }
    }

    /// Scaled sample size for a paper: `scale × n`, floored at `min_rows`
    /// but never exceeding the paper's own sample size (small papers run at
    /// full size rather than being upsampled).
    pub fn rows_for(&self, paper_n: usize) -> usize {
        ((paper_n as f64 * self.data_scale).round() as usize)
            .max(self.min_rows)
            .min(paper_n)
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 16)
}

/// Why a cell has no parity numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum CellStatus {
    /// Parity computed normally.
    Ok,
    /// The synthesizer declined the dataset (domain too large etc.).
    Infeasible(String),
    /// The first fit exceeded the wall-clock budget.
    TimedOut,
    /// Excluded by configuration (e.g. PrivMRF off-ε cells).
    Skipped,
}

/// Result of one (synthesizer, ε) cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Parity per finding: fraction of (seed × draw) trials reproducing it.
    pub parity: Vec<f64>,
    /// Variance over seeds of the per-seed parity, per finding.
    pub seed_variance: Vec<f64>,
    /// Cell status.
    pub status: CellStatus,
    /// Wall-clock seconds of the first fit (0 when not fitted).
    pub fit_seconds: f64,
}

impl CellOutcome {
    fn unavailable(status: CellStatus, findings: usize, fit_seconds: f64) -> CellOutcome {
        CellOutcome {
            parity: vec![f64::NAN; findings],
            seed_variance: vec![f64::NAN; findings],
            status,
            fit_seconds,
        }
    }

    /// Mean parity over findings (NaN when unavailable).
    pub fn mean_parity(&self) -> f64 {
        mean_finite(&self.parity)
    }

    /// Mean seed-variance over findings.
    pub fn mean_variance(&self) -> f64 {
        mean_finite(&self.seed_variance)
    }

    /// Exact equality of the statistical payload, comparing floats by bit
    /// pattern (so NaN cells from skipped / infeasible statuses compare
    /// equal rather than poisoning the comparison). `fit_seconds` is
    /// wall-clock telemetry, not a statistic, and is deliberately excluded.
    pub fn bitwise_eq(&self, other: &CellOutcome) -> bool {
        bits_eq(&self.parity, &other.parity)
            && bits_eq(&self.seed_variance, &other.seed_variance)
            && self.status == other.status
    }
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn mean_finite(values: &[f64]) -> f64 {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        f64::NAN
    } else {
        finite.iter().sum::<f64>() / finite.len() as f64
    }
}

/// Everything Figure 3 needs for one paper.
#[derive(Debug, Clone)]
pub struct PaperReport {
    /// Machine id of the paper (e.g. "saw2018").
    pub paper_id: &'static str,
    /// Citation-style name.
    pub paper_name: &'static str,
    /// (id, name, type) per finding, in id order.
    pub findings: Vec<(u32, &'static str, FindingType)>,
    /// ε grid used.
    pub epsilons: Vec<f64>,
    /// Synthesizers, row order of `cells`.
    pub synthesizers: Vec<SynthKind>,
    /// `cells[synth][eps]`.
    pub cells: Vec<Vec<CellOutcome>>,
    /// "real, bootstrap" control row: per-finding parity under resampling
    /// of the real data.
    pub control: Vec<f64>,
    /// Rows of real data used.
    pub n_rows: usize,
}

impl PaperReport {
    /// Exact equality of everything the report *claims* — findings, grid
    /// layout, per-cell parity/variance/status (bit-for-bit on floats) and
    /// the control row. Per-cell `fit_seconds` timing telemetry is excluded.
    /// This is what the parallel-vs-sequential determinism test asserts.
    pub fn bitwise_eq(&self, other: &PaperReport) -> bool {
        self.paper_id == other.paper_id
            && self.paper_name == other.paper_name
            && self.findings == other.findings
            && bits_eq(&self.epsilons, &other.epsilons)
            && self.synthesizers == other.synthesizers
            && self.cells.len() == other.cells.len()
            && self.cells.iter().zip(&other.cells).all(|(row_a, row_b)| {
                row_a.len() == row_b.len() && row_a.iter().zip(row_b).all(|(a, b)| a.bitwise_eq(b))
            })
            && bits_eq(&self.control, &other.control)
            && self.n_rows == other.n_rows
    }
}

/// Run the full grid for one publication.
///
/// # Errors
/// Fails if a finding cannot be evaluated on the *real* data (that would
/// make parity meaningless); synthetic-side failures are folded into parity.
pub fn run_paper(paper: &dyn Publication, config: &BenchmarkConfig) -> Result<PaperReport> {
    let n = config.rows_for(paper.dataset().paper_n());
    let real = paper.generate(n, config.data_seed);
    let findings = paper.findings();

    // Ground truth: every finding must evaluate on real data.
    let mut real_stats = Vec::with_capacity(findings.len());
    for f in &findings {
        let stats = f.evaluate(&real)?;
        if stats.iter().any(|v| !v.is_finite()) {
            return Err(SynrdError::UndefinedStatistic {
                finding: f.id,
                reason: "non-finite statistic on real data".to_string(),
            });
        }
        real_stats.push(stats);
    }

    // Control row: nonparametric bootstrap of the real data through the
    // same pipeline (the paper's Bayesian-bootstrap control; see
    // DESIGN.md §3 for the resampling-vs-weighting note).
    let control = control_row(paper, &real, &findings, &real_stats, config)?;

    // Cell grid, parallel over (synth, eps) in row-major order. Each cell's
    // seeds come from its own ChaCha8 keystream, so the schedule cannot
    // influence the numbers; `config.threads <= 1` forces the sequential
    // path (used by tests to assert bitwise equality with the parallel one).
    // A panicking cell is caught and surfaced as a per-paper error so a
    // multi-paper sweep can keep going (fig3/fig4 print-and-continue).
    let grid: Vec<(usize, usize)> = (0..config.synthesizers.len())
        .flat_map(|s| (0..config.epsilons.len()).map(move |e| (s, e)))
        .collect();
    let paper_id = paper.dataset().id();
    let cell = |&(s_idx, e_idx): &(usize, usize)| -> CellOutcome {
        run_cell(
            paper_id,
            &real,
            &findings,
            &real_stats,
            config,
            config.synthesizers[s_idx],
            config.epsilons[e_idx],
        )
    };
    let outcomes: Vec<CellOutcome> = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if config.threads > 1 {
            rayon::ThreadPoolBuilder::new()
                .num_threads(config.threads)
                .build()
                .expect("thread pool construction cannot fail")
                .install(|| grid.par_iter().map(cell).collect())
        } else {
            grid.iter().map(cell).collect()
        }
    }))
    .map_err(|payload| {
        let detail = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        SynrdError::Config(format!("worker thread panicked: {detail}"))
    })?;
    let cells: Vec<Vec<CellOutcome>> = if config.epsilons.is_empty() {
        vec![Vec::new(); config.synthesizers.len()]
    } else {
        outcomes
            .chunks(config.epsilons.len())
            .map(<[CellOutcome]>::to_vec)
            .collect()
    };

    Ok(PaperReport {
        paper_id,
        paper_name: paper.name(),
        findings: findings.iter().map(|f| (f.id, f.name, f.kind)).collect(),
        epsilons: config.epsilons.clone(),
        synthesizers: config.synthesizers.clone(),
        cells,
        control,
        n_rows: n,
    })
}

/// One (synthesizer, ε) cell: k fits × B draws.
///
/// Trial seeds are words of the cell's `(master, paper, synth, ε)` ChaCha8
/// keystream: words `0..k` seed the fits and word `k + seed_idx·B + b` seeds
/// draw `b` of fit `seed_idx` — so fit seeds do not depend on `B`, and no
/// seed is shared across cells.
fn run_cell(
    paper_id: &str,
    real: &synrd_data::Dataset,
    findings: &[crate::finding::Finding],
    real_stats: &[Vec<f64>],
    config: &BenchmarkConfig,
    kind: SynthKind,
    epsilon: f64,
) -> CellOutcome {
    // The paper: "PrivMRF was too slow to be viable; we report results only
    // for ε = e⁰".
    if config.restrict_privmrf && kind == SynthKind::PrivMrf && (epsilon - 1.0).abs() > 1e-9 {
        return CellOutcome::unavailable(CellStatus::Skipped, findings.len(), 0.0);
    }
    let privacy = kind.native_privacy(epsilon, real.n_rows());
    let mut per_seed_parity: Vec<Vec<f64>> = Vec::with_capacity(config.seeds);
    let mut first_fit_seconds = 0.0f64;

    for seed_idx in 0..config.seeds {
        let mut synth = kind.build();
        let fit_seed = grid_seed(
            config.data_seed,
            paper_id,
            kind.name(),
            epsilon,
            seed_idx as u64,
        );
        let started = Instant::now();
        match synth.fit(real, privacy, fit_seed) {
            Ok(()) => {}
            Err(SynthError::Infeasible { reason }) => {
                return CellOutcome::unavailable(
                    CellStatus::Infeasible(reason),
                    findings.len(),
                    started.elapsed().as_secs_f64(),
                );
            }
            Err(_) => {
                // Non-feasibility fit failure: count as zero parity for this
                // seed rather than crashing the grid.
                per_seed_parity.push(vec![0.0; findings.len()]);
                continue;
            }
        }
        let fit_seconds = started.elapsed().as_secs_f64();
        if seed_idx == 0 {
            first_fit_seconds = fit_seconds;
            if let Some(budget) = config.fit_timeout {
                if fit_seconds > budget.as_secs_f64() {
                    return CellOutcome::unavailable(
                        CellStatus::TimedOut,
                        findings.len(),
                        fit_seconds,
                    );
                }
            }
        }

        let mut holds = vec![0.0f64; findings.len()];
        for b in 0..config.bootstraps {
            let draw_seed = grid_seed(
                config.data_seed,
                paper_id,
                kind.name(),
                epsilon,
                (config.seeds + seed_idx * config.bootstraps + b) as u64,
            );
            let Ok(sample) = synth.sample(real.n_rows(), draw_seed) else {
                continue; // counts as not reproduced for every finding
            };
            for (fi, finding) in findings.iter().enumerate() {
                let reproduced = match finding.evaluate(&sample) {
                    Ok(stats) => finding.reproduced(&real_stats[fi], &stats),
                    Err(_) => false,
                };
                if reproduced {
                    holds[fi] += 1.0;
                }
            }
        }
        per_seed_parity.push(holds.iter().map(|h| h / config.bootstraps as f64).collect());
    }
    let k = per_seed_parity.len().max(1) as f64;
    let parity: Vec<f64> = (0..findings.len())
        .map(|fi| per_seed_parity.iter().map(|s| s[fi]).sum::<f64>() / k)
        .collect();
    let seed_variance: Vec<f64> = (0..findings.len())
        .map(|fi| {
            let mean = parity[fi];
            per_seed_parity
                .iter()
                .map(|s| (s[fi] - mean).powi(2))
                .sum::<f64>()
                / k
        })
        .collect();
    CellOutcome {
        parity,
        seed_variance,
        status: CellStatus::Ok,
        fit_seconds: first_fit_seconds,
    }
}

/// The "real, bootstrap" control row.
fn control_row(
    _paper: &dyn Publication,
    real: &synrd_data::Dataset,
    findings: &[crate::finding::Finding],
    real_stats: &[Vec<f64>],
    config: &BenchmarkConfig,
) -> Result<Vec<f64>> {
    let replicates = (config.bootstraps * config.seeds.max(1)).max(10);
    let mut rng = synrd_dp::rng_for(config.data_seed, "bootstrap-control");
    let mut holds = vec![0.0f64; findings.len()];
    for _ in 0..replicates {
        let resample = real.bootstrap_sample(real.n_rows(), &mut rng);
        for (fi, finding) in findings.iter().enumerate() {
            let reproduced = match finding.evaluate(&resample) {
                Ok(stats) => finding.reproduced(&real_stats[fi], &stats),
                Err(_) => false,
            };
            if reproduced {
                holds[fi] += 1.0;
            }
        }
    }
    Ok(holds.iter().map(|h| h / replicates as f64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_grid_matches_paper() {
        let eps = paper_epsilons();
        assert_eq!(eps.len(), 6);
        assert!((eps[3] - 1.0).abs() < 1e-12); // e^0
        assert!((eps[4] - std::f64::consts::E).abs() < 1e-12);
    }

    #[test]
    fn config_scaling() {
        let config = BenchmarkConfig::quick();
        assert_eq!(config.rows_for(293_581), 29_358);
        assert_eq!(config.rows_for(20_000), 2_500); // floor
        assert_eq!(config.rows_for(1_762), 1_762); // never upsampled

        let paper = BenchmarkConfig::paper();
        assert_eq!(paper.rows_for(293_581), 293_581);
        assert_eq!(paper.seeds, 10);
        assert_eq!(paper.bootstraps, 25);
    }

    #[test]
    fn mean_parity_skips_nan() {
        let cell = CellOutcome {
            parity: vec![1.0, f64::NAN, 0.5],
            seed_variance: vec![0.0, f64::NAN, 0.0],
            status: CellStatus::Ok,
            fit_seconds: 0.0,
        };
        assert!((cell.mean_parity() - 0.75).abs() < 1e-12);
    }

    /// A stand-in paper whose finding evaluates fine on real data (ground
    /// truth + control) but panics inside the grid, to exercise the
    /// panic-containment contract of `run_paper`.
    struct PanickyPaper;

    impl crate::publication::Publication for PanickyPaper {
        fn dataset(&self) -> synrd_data::BenchmarkDataset {
            synrd_data::BenchmarkDataset::Saw2018
        }

        fn generate(&self, n: usize, seed: u64) -> synrd_data::Dataset {
            use rand::{Rng, SeedableRng};
            let domain = synrd_data::Domain::new(vec![
                synrd_data::Attribute::binary("x"),
                synrd_data::Attribute::binary("y"),
            ]);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut ds = synrd_data::Dataset::with_capacity(domain, n);
            for _ in 0..n {
                let x = u32::from(rng.gen::<f64>() < 0.5);
                let y = if rng.gen::<f64>() < 0.8 { x } else { 1 - x };
                ds.push_row(&[x, y]).unwrap();
            }
            ds
        }

        fn findings(&self) -> Vec<crate::finding::Finding> {
            use std::sync::atomic::{AtomicUsize, Ordering};
            // run_paper evaluates on real data once for ground truth and
            // `max(bootstraps × seeds, 10)` times for the control row, all
            // before the grid; with seeds = bootstraps = 1 that is 11 calls.
            // Call 12 is the first grid cell.
            const PRE_GRID_CALLS: usize = 11;
            let calls = AtomicUsize::new(0);
            vec![crate::finding::Finding::new(
                1,
                "panics inside the grid",
                FindingType::DescriptiveStatistics,
                crate::finding::Check::Tolerance { alpha: 0.5 },
                Box::new(move |ds| {
                    if calls.fetch_add(1, Ordering::Relaxed) >= PRE_GRID_CALLS {
                        panic!("boom in cell");
                    }
                    Ok(vec![ds.mean_of(0).unwrap_or(0.0)])
                }),
            )]
        }
    }

    #[test]
    fn grid_panic_is_an_error_not_an_abort() {
        // A panic in one cell must come back as Err so a multi-paper sweep
        // (fig3/fig4 print-and-continue) survives — on both grid paths.
        for threads in [1usize, 4] {
            let config = BenchmarkConfig {
                epsilons: vec![1.0],
                seeds: 1,
                bootstraps: 1,
                data_scale: 0.01,
                min_rows: 400,
                data_seed: 5,
                threads,
                fit_timeout: None,
                restrict_privmrf: true,
                synthesizers: vec![SynthKind::Mst],
            };
            let err =
                run_paper(&PanickyPaper, &config).expect_err("cell panic must surface as an error");
            assert!(
                err.to_string().contains("panicked"),
                "unexpected error ({threads} threads): {err}"
            );
        }
    }
}
