//! Findings: the atomic unit of epistemic parity.
//!
//! Following Cohen et al. (as adapted in §4.1 of the paper), a *finding* is
//! a natural-language claim backed by a Boolean-evaluable comparison of
//! values. We model a finding as
//!
//! * a statistic function `Dataset → Vec<f64>`, re-runnable on real or
//!   synthetic data, and
//! * a [`Check`] that decides whether the synthetic statistics preserve the
//!   real ones — a tolerance band (the paper's "soft finding", Eq. 6), an
//!   order pattern, or a sign pattern.

use crate::error::{Result, SynrdError};
use std::fmt;
use synrd_data::Dataset;

/// The finding taxonomy of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingType {
    DescriptiveStatistics,
    RegressionBetweenCoefficients,
    FixedCoefficientSign,
    CausalPathVariability,
    CausalPathInteraction,
    CoefficientDifference,
    LogisticPbr,
    LogisticFnr,
    LogisticFpr,
    LogisticAccuracy,
    MeanDifferenceBetweenClass,
    MeanDifferenceTemporal,
    CorrelationPearson,
    CorrelationSpearman,
}

impl FindingType {
    /// All types, in Table 2 row order.
    pub const ALL: [FindingType; 14] = [
        FindingType::DescriptiveStatistics,
        FindingType::RegressionBetweenCoefficients,
        FindingType::FixedCoefficientSign,
        FindingType::CausalPathVariability,
        FindingType::CausalPathInteraction,
        FindingType::CoefficientDifference,
        FindingType::LogisticPbr,
        FindingType::LogisticFnr,
        FindingType::LogisticFpr,
        FindingType::LogisticAccuracy,
        FindingType::MeanDifferenceBetweenClass,
        FindingType::MeanDifferenceTemporal,
        FindingType::CorrelationPearson,
        FindingType::CorrelationSpearman,
    ];

    /// Display label matching Table 2.
    pub fn label(self) -> &'static str {
        match self {
            FindingType::DescriptiveStatistics => "Descriptive Statistics",
            FindingType::RegressionBetweenCoefficients => "Regression / Between-Coefficients",
            FindingType::FixedCoefficientSign => "Regression / Fixed Coefficient (Sign)",
            FindingType::CausalPathVariability => "Causal Paths / Variability",
            FindingType::CausalPathInteraction => "Causal Paths / Interaction",
            FindingType::CoefficientDifference => "Coefficient Difference",
            FindingType::LogisticPbr => "Logistic Regression / PBR",
            FindingType::LogisticFnr => "Logistic Regression / FNR",
            FindingType::LogisticFpr => "Logistic Regression / FPR",
            FindingType::LogisticAccuracy => "Logistic Regression / Accuracy",
            FindingType::MeanDifferenceBetweenClass => "Mean Difference / Between-Class",
            FindingType::MeanDifferenceTemporal => "Mean Difference / Temporal (FC)",
            FindingType::CorrelationPearson => "Correlation / Pearson",
            FindingType::CorrelationSpearman => "Correlation / Spearman",
        }
    }
}

/// How synthetic statistics are compared to real ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Check {
    /// The paper's soft finding (Eq. 6): `|τ(synth)_i − τ(real)_i| ≤ α` for
    /// every component.
    Tolerance { alpha: f64 },
    /// The full ranking of the statistic vector must match (for a pair,
    /// "A > B" must survive synthesis).
    Order,
    /// Every component must keep its sign.
    Sign,
}

/// The statistic function of a finding.
pub type StatFn = Box<dyn Fn(&Dataset) -> Result<Vec<f64>> + Send + Sync>;

/// One finding: a claim from a benchmark paper as a computable object.
pub struct Finding {
    /// Global finding id (the paper's numbering; #4, #39, #96 are the hard
    /// ones).
    pub id: u32,
    /// Short human-readable description of the claim.
    pub name: &'static str,
    /// Taxonomy bucket (Table 2).
    pub kind: FindingType,
    /// Comparison semantics.
    pub check: Check,
    stat: StatFn,
}

impl fmt::Debug for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Finding")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("check", &self.check)
            .finish()
    }
}

impl Finding {
    /// Construct a finding.
    pub fn new(
        id: u32,
        name: &'static str,
        kind: FindingType,
        check: Check,
        stat: StatFn,
    ) -> Finding {
        Finding {
            id,
            name,
            kind,
            check,
            stat,
        }
    }

    /// Evaluate the statistic on a dataset.
    ///
    /// # Errors
    /// Propagates underlying statistics errors; callers treat evaluation
    /// failures on *synthetic* data as "not reproduced".
    pub fn evaluate(&self, data: &Dataset) -> Result<Vec<f64>> {
        let stats = (self.stat)(data)?;
        if stats.is_empty() {
            return Err(SynrdError::UndefinedStatistic {
                finding: self.id,
                reason: "empty statistic vector".to_string(),
            });
        }
        Ok(stats)
    }

    /// Does the synthetic statistic vector preserve the real one under this
    /// finding's check? Undefined values (NaN) never reproduce.
    pub fn reproduced(&self, real: &[f64], synth: &[f64]) -> bool {
        if real.len() != synth.len() || synth.iter().any(|v| !v.is_finite()) {
            return false;
        }
        match self.check {
            Check::Tolerance { alpha } => {
                real.iter().zip(synth).all(|(r, s)| (r - s).abs() <= alpha)
            }
            Check::Sign => real.iter().zip(synth).all(|(r, s)| {
                (r.signum() - s.signum()).abs() < f64::EPSILON || (*r == 0.0 && *s == 0.0)
            }),
            Check::Order => ranking(real) == ranking(synth),
        }
    }
}

/// Rank pattern of a vector (ties broken by index, which is deterministic
/// and identical across the two sides).
fn ranking(values: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use synrd_data::{Attribute, Domain};

    fn dummy_finding(check: Check) -> Finding {
        Finding::new(
            1,
            "test",
            FindingType::DescriptiveStatistics,
            check,
            Box::new(|d: &Dataset| Ok(vec![d.mean_of(0)?])),
        )
    }

    #[test]
    fn tolerance_check() {
        let f = dummy_finding(Check::Tolerance { alpha: 0.1 });
        assert!(f.reproduced(&[0.5], &[0.55]));
        assert!(!f.reproduced(&[0.5], &[0.65]));
        assert!(!f.reproduced(&[0.5], &[f64::NAN]));
    }

    #[test]
    fn order_check() {
        let f = dummy_finding(Check::Order);
        assert!(f.reproduced(&[0.3, 0.2, 0.9], &[0.5, 0.1, 0.8]));
        assert!(!f.reproduced(&[0.3, 0.2, 0.9], &[0.1, 0.5, 0.8]));
    }

    #[test]
    fn sign_check() {
        let f = dummy_finding(Check::Sign);
        assert!(f.reproduced(&[-0.2, 0.4], &[-0.9, 0.01]));
        assert!(!f.reproduced(&[-0.2, 0.4], &[0.2, 0.4]));
    }

    #[test]
    fn evaluate_runs_the_statistic() {
        let domain = Domain::new(vec![Attribute::binary("b")]);
        let ds = Dataset::new(domain, vec![vec![1, 1, 0, 0]]).unwrap();
        let f = dummy_finding(Check::Tolerance { alpha: 0.1 });
        assert_eq!(f.evaluate(&ds).unwrap(), vec![0.5]);
    }

    #[test]
    fn length_mismatch_never_reproduces() {
        let f = dummy_finding(Check::Order);
        assert!(!f.reproduced(&[1.0, 2.0], &[1.0]));
    }
}
