//! # synrd — epistemic parity as an evaluation metric for differential privacy
//!
//! A Rust reproduction of Rosenblatt et al., *"Epistemic Parity:
//! Reproducibility as an Evaluation Metric for Differential Privacy"*
//! (VLDB 2023) — the SynRD benchmark.
//!
//! The benchmark asks: **would a published paper's conclusions change had
//! the authors used DP synthetic data?** It answers by re-running each
//! paper's findings on synthetic data from six state-of-the-art DP
//! synthesizers and measuring the fraction of trials in which each finding
//! survives (its *epistemic parity*).
//!
//! ```no_run
//! use synrd::benchmark::{run_paper, BenchmarkConfig};
//! use synrd::publication::publication_by_id;
//! use synrd::report::render_fig3_block;
//!
//! let paper = publication_by_id("saw2018").expect("registered paper");
//! let config = BenchmarkConfig::quick();
//! let report = run_paper(paper.as_ref(), &config).expect("benchmark run");
//! println!("{}", render_fig3_block(&report));
//! ```
//!
//! Modules:
//! * [`finding`] — findings as computable statistics + checks (§4.1);
//! * [`publication`] / [`papers`] — the eight benchmark papers (§5.2);
//! * [`benchmark`] — the k × B × ε × synthesizer grid driver (§4.2);
//! * [`parity`] — aggregation into the Figure 4 series;
//! * [`visual`] — qualitative visual findings (Figure 1, §7.2);
//! * [`report`] — text renderings of Figures 3/4 and Tables 1/2.

pub mod benchmark;
pub mod error;
pub mod finding;
pub mod papers;
pub mod parity;
pub mod publication;
pub mod report;
pub mod visual;

pub use benchmark::{
    assemble_report, fits_performed, paper_epsilons, run_grid, run_grid_sharded,
    run_grid_sharded_with_stores, run_grid_with_stores, run_paper, run_paper_with,
    run_paper_with_stores, BenchmarkConfig, CellOutcome, CellStatus, CellStore, FitStore,
    PaperReport, Shard, ShardSummary,
};
pub use error::{Result, SynrdError};
pub use finding::{Check, Finding, FindingType};
pub use parity::{aggregate, never_reproduced, paper_summary, AggregateSeries};
pub use publication::{all_publications, publication_by_id, Publication};
pub use visual::VisualFinding;
