//! Shared statistic helpers for the paper modules.
//!
//! All helpers use the *NaN convention*: statistics over empty groups return
//! NaN rather than erroring, because on heavily-noised synthetic data a
//! subgroup can vanish; [`crate::finding::Finding::reproduced`] then counts
//! the finding as not reproduced, which is the paper's semantics.

use crate::error::Result;
use synrd_data::Dataset;
use synrd_stats::{logistic_columns, ols_columns, pearson, spearman, LinearFit, LogisticFit};

/// Numeric column by attribute name.
pub(crate) fn col(ds: &Dataset, name: &str) -> Result<Vec<f64>> {
    let idx = ds.domain().index_of(name)?;
    Ok(ds.numeric_column(idx)?)
}

/// Raw codes by attribute name.
pub(crate) fn codes(ds: &Dataset, name: &str) -> Result<Vec<u32>> {
    Ok(ds.decode_column_by_name(name)?)
}

/// Proportion of rows with `attr == code`.
pub(crate) fn prop(ds: &Dataset, name: &str, code: u32) -> Result<f64> {
    let idx = ds.domain().index_of(name)?;
    Ok(ds.proportion(idx, code)?)
}

/// Mean of the numeric column `value` among rows where every `(attr, code)`
/// condition holds; NaN for empty groups.
pub(crate) fn mean_where(ds: &Dataset, conditions: &[(&str, u32)], value: &str) -> Result<f64> {
    let cond_idx: Vec<(usize, u32)> = conditions
        .iter()
        .map(|(n, c)| Ok((ds.domain().index_of(n)?, *c)))
        .collect::<Result<_>>()?;
    let sub = ds.filter_rows(|r| cond_idx.iter().all(|&(a, c)| r.get(a) == c));
    if sub.is_empty() {
        return Ok(f64::NAN);
    }
    let vidx = sub.domain().index_of(value)?;
    Ok(sub.mean_of(vidx)?)
}

/// Proportion of `target_code` in `target` among rows matching conditions.
pub(crate) fn prop_where(
    ds: &Dataset,
    conditions: &[(&str, u32)],
    target: &str,
    target_code: u32,
) -> Result<f64> {
    let cond_idx: Vec<(usize, u32)> = conditions
        .iter()
        .map(|(n, c)| Ok((ds.domain().index_of(n)?, *c)))
        .collect::<Result<_>>()?;
    let sub = ds.filter_rows(|r| cond_idx.iter().all(|&(a, c)| r.get(a) == c));
    if sub.is_empty() {
        return Ok(f64::NAN);
    }
    let tidx = sub.domain().index_of(target)?;
    Ok(sub.proportion(tidx, target_code)?)
}

/// Pearson correlation of two named columns.
pub(crate) fn pearson_named(ds: &Dataset, a: &str, b: &str) -> Result<f64> {
    Ok(pearson(&col(ds, a)?, &col(ds, b)?)?)
}

/// Spearman correlation of two named columns.
pub(crate) fn spearman_named(ds: &Dataset, a: &str, b: &str) -> Result<f64> {
    Ok(spearman(&col(ds, a)?, &col(ds, b)?)?)
}

/// OLS of `y` on named predictors (intercept included; coefficient i+1
/// corresponds to predictor i).
pub(crate) fn ols_named(ds: &Dataset, y: &str, xs: &[&str]) -> Result<LinearFit> {
    let yv = col(ds, y)?;
    let cols: Vec<Vec<f64>> = xs.iter().map(|x| col(ds, x)).collect::<Result<_>>()?;
    Ok(ols_columns(&cols, &yv)?)
}

/// Logistic regression of binary `y` on named predictors.
pub(crate) fn logistic_named(ds: &Dataset, y: &str, xs: &[&str]) -> Result<LogisticFit> {
    let yv = col(ds, y)?;
    let cols: Vec<Vec<f64>> = xs.iter().map(|x| col(ds, x)).collect::<Result<_>>()?;
    Ok(logistic_columns(&cols, &yv)?)
}

/// Log odds ratio of `outcome == 1` for `exposure == 1` vs `exposure == 0`,
/// from the 2×2 table with the Haldane–Anscombe correction.
pub(crate) fn log_odds_ratio(ds: &Dataset, exposure: &str, outcome: &str) -> Result<f64> {
    let e = codes(ds, exposure)?;
    let o = codes(ds, outcome)?;
    let mut table = [0.0f64; 4]; // [e1o1, e1o0, e0o1, e0o0]
    for (ev, ov) in e.iter().zip(&o) {
        let idx = match (ev, ov) {
            (1, 1) => 0,
            (1, 0) => 1,
            (0, 1) => 2,
            _ => 3,
        };
        table[idx] += 1.0;
    }
    Ok(synrd_stats::odds_ratio_2x2(table[0], table[1], table[2], table[3]).ln())
}

/// Pearson correlation between two named columns *within* a subgroup.
pub(crate) fn pearson_where(
    ds: &Dataset,
    conditions: &[(&str, u32)],
    a: &str,
    b: &str,
) -> Result<f64> {
    let cond_idx: Vec<(usize, u32)> = conditions
        .iter()
        .map(|(n, c)| Ok((ds.domain().index_of(n)?, *c)))
        .collect::<Result<_>>()?;
    let sub = ds.filter_rows(|r| cond_idx.iter().all(|&(aa, c)| r.get(aa) == c));
    if sub.n_rows() < 3 {
        return Ok(f64::NAN);
    }
    pearson_named(&sub, a, b)
}
