//! The eight benchmark publications (§5.2 of the paper), each translating a
//! peer-reviewed paper's claims into computable [`crate::finding::Finding`]s.
//!
//! Global finding ids run 1–104 across papers in this order:
//! Assari 1–18, Fairman 19–37, Iverson 38–49, Fruiht 50–55, Jeong 56–63,
//! Lee 64–75, Pierce 76–89, Saw 90–104. The benchmark-wide hard findings
//! keep their paper numbering: **#4** (Assari), **#39** (Iverson),
//! **#96** (Saw).

pub mod assari2019;
pub mod fairman2019;
pub mod fruiht2018;
mod helpers;
pub mod iverson2021;
pub mod jeong2021;
pub mod lee2021;
pub mod pierce2019;
pub mod saw2018;

#[cfg(test)]
mod tests {
    use crate::publication::all_publications;
    use std::collections::HashSet;

    #[test]
    fn finding_ids_are_globally_unique() {
        let mut seen = HashSet::new();
        for paper in all_publications() {
            for finding in paper.findings() {
                assert!(seen.insert(finding.id), "duplicate id {}", finding.id);
            }
        }
        assert_eq!(seen.len(), 104);
    }

    #[test]
    fn hard_findings_have_their_paper_ids() {
        for paper in all_publications() {
            for finding in paper.findings() {
                if finding.id == 4 || finding.id == 39 || finding.id == 96 {
                    assert!(finding.name.contains("HARD"), "#{}", finding.id);
                }
            }
        }
    }

    #[test]
    fn every_paper_has_findings_and_valid_dataset() {
        for paper in all_publications() {
            assert!(!paper.findings().is_empty(), "{}", paper.name());
            let data = paper.generate(200, 3);
            assert_eq!(data.n_rows(), 200);
        }
    }
}
