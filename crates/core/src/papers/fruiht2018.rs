//! Fruiht & Chan (2018): naturally occurring mentorship and educational
//! attainment of first-generation college students (AddHealth). 6 findings
//! (ids 50–55), including the benchmark's single *Causal Paths* pair:
//! a PROCESS-style moderation (mentor × parent-college interaction) and a
//! mediation path through income.

use crate::finding::{Check, Finding, FindingType as FT};
use crate::papers::helpers::*;
use crate::publication::Publication;
use synrd_data::BenchmarkDataset;
use synrd_stats::{mediation, moderation};

/// The Fruiht & Chan 2018 publication.
pub struct Fruiht2018;

impl Publication for Fruiht2018 {
    fn dataset(&self) -> BenchmarkDataset {
        BenchmarkDataset::Fruiht2018
    }

    fn findings(&self) -> Vec<Finding> {
        vec![
            Finding::new(
                50,
                "mentored respondents attain more education",
                FT::MeanDifferenceBetweenClass,
                Check::Order,
                Box::new(|ds| {
                    Ok(vec![
                        mean_where(ds, &[("mentor", 1)], "edu_attain")?,
                        mean_where(ds, &[("mentor", 0)], "edu_attain")?,
                    ])
                }),
            ),
            Finding::new(
                51,
                "parental college outweighs mentorship in the regression",
                FT::RegressionBetweenCoefficients,
                Check::Order,
                Box::new(|ds| {
                    let fit = ols_named(ds, "edu_attain", &["parent_college", "mentor", "income"])?;
                    Ok(vec![fit.coefficients[1], fit.coefficients[2]])
                }),
            ),
            Finding::new(
                52,
                "African American respondents attain less education",
                FT::FixedCoefficientSign,
                Check::Sign,
                Box::new(|ds| {
                    let race = codes(ds, "race")?;
                    let black: Vec<f64> = race.iter().map(|&c| f64::from(c == 1)).collect();
                    let edu = col(ds, "edu_attain")?;
                    let pc = col(ds, "parent_college")?;
                    let mentor = col(ds, "mentor")?;
                    let fit = synrd_stats::ols_columns(&[black, pc, mentor], &edu)?;
                    Ok(vec![fit.coefficients[1]])
                }),
            ),
            Finding::new(
                53,
                "mentorship moderates the parental-education effect",
                FT::CausalPathInteraction,
                Check::Sign,
                Box::new(|ds| {
                    let y = col(ds, "edu_attain")?;
                    let x = col(ds, "parent_college")?;
                    let m = col(ds, "mentor")?;
                    let result = moderation(&y, &x, &m, &[])?;
                    Ok(vec![result.interaction])
                }),
            ),
            Finding::new(
                54,
                "parental college works partly through family income",
                FT::CausalPathVariability,
                Check::Sign,
                Box::new(|ds| {
                    let y = col(ds, "edu_attain")?;
                    let x = col(ds, "parent_college")?;
                    let med = col(ds, "income")?;
                    let result = mediation(&y, &x, &med)?;
                    Ok(vec![result.indirect])
                }),
            ),
            Finding::new(
                55,
                "roughly three quarters report a natural mentor",
                FT::DescriptiveStatistics,
                Check::Tolerance { alpha: 0.03 },
                Box::new(|ds| Ok(vec![prop(ds, "mentor", 1)?])),
            ),
        ]
    }
}
