//! Jeong et al. (2021): racial bias in classifiers predicting 9th-grade math
//! performance (HSLS:09). 8 findings (ids 56–63): accuracy / FPR / FNR /
//! predicted-base-rate comparisons between the privileged (White/Asian) and
//! disadvantaged (Black/Hispanic/Native American) groups, for a logistic
//! regression and a random forest.
//!
//! Each statistic *re-runs the paper's whole pipeline* on the dataset it is
//! given: train/test split, model training, per-group evaluation — so
//! running it on synthetic data reproduces the full analysis, as the
//! methodology requires.

use crate::error::Result;
use crate::finding::{Check, Finding, FindingType as FT};
use crate::publication::Publication;
use rand::rngs::StdRng;
use rand::SeedableRng;
use synrd_data::{BenchmarkDataset, ColumnAccess, Dataset};
use synrd_ml::{
    group_metrics, train_test_split, ForestOptions, Metrics, RandomForest, TreeOptions,
};
use synrd_stats::logistic_columns;

/// Which model family a finding evaluates.
#[derive(Clone, Copy, PartialEq)]
enum Model {
    Logistic,
    Forest,
}

/// Row-major features, binary labels, and per-row group ids.
type SupervisedData = (Vec<Vec<f64>>, Vec<f64>, Vec<u32>);

/// Feature matrix (everything except the label and the protected attribute),
/// labels, and group ids.
fn prepare(ds: &Dataset) -> Result<SupervisedData> {
    let d = ds.n_attrs();
    let race = ds.domain().index_of("race_group")?;
    let label = ds.domain().index_of("top50")?;
    let mut features: Vec<Vec<f64>> = vec![Vec::with_capacity(d - 2); ds.n_rows()];
    for a in 0..d {
        if a == race || a == label {
            continue;
        }
        // Codes as numeric features; the survey items are ordinal anyway.
        let mut r = 0;
        ds.packed_column(a)?.for_each_code(|code| {
            features[r].push(f64::from(code));
            r += 1;
        });
    }
    let mut y: Vec<f64> = Vec::with_capacity(ds.n_rows());
    ds.packed_column(label)?
        .for_each_code(|c| y.push(f64::from(c)));
    let groups: Vec<u32> = ds.decode_column(race)?;
    Ok((features, y, groups))
}

/// One memoized pipeline run: dataset fingerprint, model family, and the
/// (privileged, disadvantaged) group metrics it produced.
type MemoEntry = (u64, Model, (Metrics, Metrics));

thread_local! {
    /// Memo of the last pipeline run per thread: the benchmark evaluates all
    /// eight findings on the same dataset in sequence, and four findings
    /// share each model family — this avoids retraining 4× per draw.
    /// Keyed by a content fingerprint so address reuse cannot alias.
    static PIPELINE_MEMO: std::cell::RefCell<Vec<MemoEntry>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Cheap content fingerprint of a dataset (FNV over the label and group
/// columns plus dimensions) for the pipeline memo.
fn fingerprint(ds: &Dataset) -> Result<u64> {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(ds.n_rows() as u64);
    mix(ds.n_attrs() as u64);
    for name in ["top50", "race_group", "ses"] {
        let idx = ds.domain().index_of(name)?;
        ds.packed_column(idx)?.for_each_code(|c| mix(u64::from(c)));
    }
    Ok(h)
}

/// Train the model and return (privileged, disadvantaged) test metrics.
/// Group code 0 = privileged, 1 = disadvantaged (generator convention).
fn run_pipeline(ds: &Dataset, model: Model) -> Result<(Metrics, Metrics)> {
    let key = fingerprint(ds)?;
    let cached = PIPELINE_MEMO.with(|memo| {
        memo.borrow()
            .iter()
            .find(|(k, m, _)| *k == key && *m == model)
            .map(|(_, _, r)| *r)
    });
    if let Some(result) = cached {
        return Ok(result);
    }
    let result = run_pipeline_uncached(ds, model)?;
    PIPELINE_MEMO.with(|memo| {
        let mut memo = memo.borrow_mut();
        // Keep only the current dataset's entries (one per model family).
        memo.retain(|(k, _, _)| *k == key);
        memo.push((key, model, result));
    });
    Ok(result)
}

fn run_pipeline_uncached(ds: &Dataset, model: Model) -> Result<(Metrics, Metrics)> {
    let (x, y, groups) = prepare(ds)?;
    // Fixed internal seed: the pipeline is part of the finding definition.
    let mut rng = StdRng::seed_from_u64(0x4a31_2021);
    let (train, test) = train_test_split(x.len(), 0.3, &mut rng)?;
    let xtr: Vec<Vec<f64>> = train.iter().map(|&i| x[i].clone()).collect();
    let ytr: Vec<f64> = train.iter().map(|&i| y[i]).collect();
    let xte: Vec<Vec<f64>> = test.iter().map(|&i| x[i].clone()).collect();
    let yte: Vec<f64> = test.iter().map(|&i| y[i]).collect();
    let gte: Vec<u32> = test.iter().map(|&i| groups[i]).collect();

    let scores: Vec<f64> = match model {
        Model::Logistic => {
            // Column-major view for the IRLS fit.
            let d = xtr[0].len();
            let cols: Vec<Vec<f64>> = (0..d)
                .map(|j| xtr.iter().map(|row| row[j]).collect())
                .collect();
            let fit = logistic_columns(&cols, &ytr)?;
            xte.iter()
                .map(|row| {
                    let eta: f64 = fit.coefficients[0]
                        + row
                            .iter()
                            .zip(&fit.coefficients[1..])
                            .map(|(a, b)| a * b)
                            .sum::<f64>();
                    1.0 / (1.0 + (-eta).exp())
                })
                .collect()
        }
        Model::Forest => {
            let options = ForestOptions {
                n_trees: 20,
                tree: TreeOptions {
                    max_depth: 8,
                    min_samples_split: 10,
                    max_features: None,
                },
            };
            let forest = RandomForest::fit(&xtr, &ytr, options, &mut rng)?;
            forest.predict_proba(&xte)
        }
    };
    let by_group = group_metrics(&scores, &yte, &gte, 2)?;
    Ok((by_group[0], by_group[1]))
}

fn metric_finding(
    id: u32,
    name: &'static str,
    kind: FT,
    check: Check,
    model: Model,
    extract: fn(&Metrics, &Metrics) -> Vec<f64>,
) -> Finding {
    Finding::new(
        id,
        name,
        kind,
        check,
        Box::new(move |ds: &Dataset| {
            let (privileged, disadvantaged) = run_pipeline(ds, model)?;
            Ok(extract(&privileged, &disadvantaged))
        }),
    )
}

/// The Jeong et al. 2021 publication.
pub struct Jeong2021;

impl Publication for Jeong2021 {
    fn dataset(&self) -> BenchmarkDataset {
        BenchmarkDataset::Jeong2021
    }

    fn findings(&self) -> Vec<Finding> {
        vec![
            metric_finding(
                56,
                "logistic accuracy is comparable across groups",
                FT::LogisticAccuracy,
                Check::Tolerance { alpha: 0.08 },
                Model::Logistic,
                |p, d| vec![p.accuracy - d.accuracy],
            ),
            metric_finding(
                57,
                "forest accuracy is comparable across groups",
                FT::LogisticAccuracy,
                Check::Tolerance { alpha: 0.08 },
                Model::Forest,
                |p, d| vec![p.accuracy - d.accuracy],
            ),
            metric_finding(
                58,
                "logistic FPR: privileged get the benefit of the doubt",
                FT::LogisticFpr,
                Check::Order,
                Model::Logistic,
                |p, d| vec![p.fpr, d.fpr],
            ),
            metric_finding(
                59,
                "forest FPR: privileged get the benefit of the doubt",
                FT::LogisticFpr,
                Check::Order,
                Model::Forest,
                |p, d| vec![p.fpr, d.fpr],
            ),
            metric_finding(
                60,
                "logistic FNR: disadvantaged are under-estimated",
                FT::LogisticFnr,
                Check::Order,
                Model::Logistic,
                |p, d| vec![d.fnr, p.fnr],
            ),
            metric_finding(
                61,
                "forest FNR: disadvantaged are under-estimated",
                FT::LogisticFnr,
                Check::Order,
                Model::Forest,
                |p, d| vec![d.fnr, p.fnr],
            ),
            metric_finding(
                62,
                "logistic predicted base rate favors the privileged",
                FT::LogisticPbr,
                Check::Order,
                Model::Logistic,
                |p, d| vec![p.pbr, d.pbr],
            ),
            metric_finding(
                63,
                "forest predicted base rate favors the privileged",
                FT::LogisticPbr,
                Check::Order,
                Model::Forest,
                |p, d| vec![p.pbr, d.pbr],
            ),
        ]
    }
}
