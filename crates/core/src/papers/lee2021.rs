//! Lee & Simpkins (2021): ability self-concept and parental support as
//! protective factors against low teacher support (HSLS:09). 12 findings
//! (ids 64–75), dominated by Pearson correlations — this is the benchmark's
//! high-mutual-information, quasi-continuous dataset on which all six
//! synthesizers achieve perfect parity in the paper.

use crate::finding::{Check, Finding, FindingType as FT};
use crate::papers::helpers::*;
use crate::publication::Publication;
use synrd_data::BenchmarkDataset;

/// Pearson finding with the paper's threshold convention: the statistic is
/// `r − threshold`, so a [`Check::Sign`] preserves "stronger than the
/// threshold" (0.7 = "strong").
fn corr_finding(
    id: u32,
    name: &'static str,
    a: &'static str,
    b: &'static str,
    threshold: f64,
) -> Finding {
    Finding::new(
        id,
        name,
        FT::CorrelationPearson,
        Check::Sign,
        Box::new(move |ds| Ok(vec![pearson_named(ds, a, b)? - threshold])),
    )
}

/// The Lee & Simpkins 2021 publication.
pub struct Lee2021;

impl Publication for Lee2021 {
    fn dataset(&self) -> BenchmarkDataset {
        BenchmarkDataset::Lee2021
    }

    fn findings(&self) -> Vec<Finding> {
        const PREDICTORS: [&str; 5] = [
            "math9",
            "ability_self_concept",
            "teacher_support",
            "parent_support",
            "ses",
        ];
        vec![
            corr_finding(
                64,
                "math scores strongly correlated across grades",
                "math9",
                "math11",
                0.7,
            ),
            corr_finding(
                65,
                "ability self-concept tracks 11th-grade math",
                "ability_self_concept",
                "math11",
                0.0,
            ),
            corr_finding(
                66,
                "teacher support positively related to math",
                "teacher_support",
                "math11",
                0.0,
            ),
            corr_finding(
                67,
                "parental support positively related to math",
                "parent_support",
                "math11",
                0.0,
            ),
            corr_finding(68, "SES positively related to math", "ses", "math11", 0.0),
            corr_finding(
                69,
                "SES tracks parental support",
                "ses",
                "parent_support",
                0.0,
            ),
            corr_finding(
                70,
                "prior achievement moderately predicts math",
                "prior_achievement",
                "math11",
                0.5,
            ),
            corr_finding(
                71,
                "English and math achievement co-vary",
                "english9",
                "math9",
                0.0,
            ),
            Finding::new(
                72,
                "ability self-concept outweighs teacher support",
                FT::RegressionBetweenCoefficients,
                Check::Order,
                Box::new(|ds| {
                    let fit = ols_named(ds, "math11", &PREDICTORS)?;
                    Ok(vec![fit.coefficients[2], fit.coefficients[3]])
                }),
            ),
            Finding::new(
                73,
                "parental support outweighs teacher support",
                FT::RegressionBetweenCoefficients,
                Check::Order,
                Box::new(|ds| {
                    let fit = ols_named(ds, "math11", &PREDICTORS)?;
                    Ok(vec![fit.coefficients[4], fit.coefficients[3]])
                }),
            ),
            Finding::new(
                74,
                "ability self-concept outweighs parental support",
                FT::RegressionBetweenCoefficients,
                Check::Order,
                Box::new(|ds| {
                    let fit = ols_named(ds, "math11", &PREDICTORS)?;
                    Ok(vec![fit.coefficients[2], fit.coefficients[4]])
                }),
            ),
            Finding::new(
                75,
                "self-concept buffers low teacher support (interaction < 0)",
                FT::FixedCoefficientSign,
                Check::Sign,
                Box::new(|ds| {
                    let y = col(ds, "math11")?;
                    let math9 = col(ds, "math9")?;
                    let ability = col(ds, "ability_self_concept")?;
                    let teacher = col(ds, "teacher_support")?;
                    let parent = col(ds, "parent_support")?;
                    let interaction: Vec<f64> =
                        ability.iter().zip(&teacher).map(|(a, t)| a * t).collect();
                    let fit = synrd_stats::ols_columns(
                        &[math9, ability, teacher, parent, interaction],
                        &y,
                    )?;
                    Ok(vec![fit.coefficients[5]])
                }),
            ),
        ]
    }
}
