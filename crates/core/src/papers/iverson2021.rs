//! Iverson & Terry (2021): high-school football and adult depression /
//! suicidality (AddHealth). 12 findings (ids 38–49) including the
//! benchmark-wide hard finding **#39**, a five-component descriptive
//! statistic over a sparse, low-mutual-information, wide-domain dataset no
//! synthesizer handles well.

use crate::finding::{Check, Finding, FindingType as FT};
use crate::papers::helpers::*;
use crate::publication::Publication;
use synrd_data::BenchmarkDataset;

/// The Iverson & Terry 2021 publication.
pub struct Iverson2021;

impl Publication for Iverson2021 {
    fn dataset(&self) -> BenchmarkDataset {
        BenchmarkDataset::Iverson2021
    }

    fn findings(&self) -> Vec<Finding> {
        vec![
            Finding::new(
                38,
                "no direct effect of football on adult depression",
                FT::MeanDifferenceBetweenClass,
                Check::Tolerance { alpha: 0.03 },
                Box::new(|ds| {
                    Ok(vec![
                        prop_where(ds, &[("football", 1)], "dep_adult", 1)?
                            - prop_where(ds, &[("football", 0)], "dep_adult", 1)?,
                    ])
                }),
            ),
            Finding::new(
                39,
                "adult diagnosis prevalences (5 statistics) [HARD]",
                FT::DescriptiveStatistics,
                Check::Tolerance { alpha: 0.015 },
                Box::new(|ds| {
                    Ok(vec![
                        prop(ds, "dep_adult", 1)?,
                        prop(ds, "suicidality_adult", 1)?,
                        prop(ds, "counseling", 1)?,
                        prop(ds, "anxiety", 1)?,
                        prop(ds, "psych_hosp", 1)?,
                    ])
                }),
            ),
            Finding::new(
                40,
                "no direct effect of football on suicidality",
                FT::MeanDifferenceBetweenClass,
                Check::Tolerance { alpha: 0.025 },
                Box::new(|ds| {
                    Ok(vec![
                        prop_where(ds, &[("football", 1)], "suicidality_adult", 1)?
                            - prop_where(ds, &[("football", 0)], "suicidality_adult", 1)?,
                    ])
                }),
            ),
            Finding::new(
                41,
                "adolescent depression predicts adult depression",
                FT::CoefficientDifference,
                Check::Order,
                Box::new(|ds| {
                    Ok(vec![
                        prop_where(ds, &[("dep_adolescent", 1)], "dep_adult", 1)?,
                        prop_where(ds, &[("dep_adolescent", 0)], "dep_adult", 1)?,
                    ])
                }),
            ),
            Finding::new(
                42,
                "adolescent depression raises adult suicidality odds",
                FT::FixedCoefficientSign,
                Check::Sign,
                Box::new(|ds| {
                    Ok(vec![log_odds_ratio(
                        ds,
                        "dep_adolescent",
                        "suicidality_adult",
                    )?])
                }),
            ),
            Finding::new(
                43,
                "counseling uptake higher among depressed adults",
                FT::MeanDifferenceBetweenClass,
                Check::Order,
                Box::new(|ds| {
                    Ok(vec![
                        prop_where(ds, &[("dep_adult", 1)], "counseling", 1)?,
                        prop_where(ds, &[("dep_adult", 0)], "counseling", 1)?,
                    ])
                }),
            ),
            Finding::new(
                44,
                "suicidality rarer than depression at both waves",
                FT::MeanDifferenceTemporal,
                Check::Order,
                Box::new(|ds| {
                    Ok(vec![
                        prop(ds, "dep_adult", 1)?,
                        prop(ds, "suicidality_adult", 1)?,
                    ])
                }),
            ),
            Finding::new(
                45,
                "psychiatric hospitalization concentrates among the suicidal",
                FT::MeanDifferenceBetweenClass,
                Check::Order,
                Box::new(|ds| {
                    Ok(vec![
                        prop_where(ds, &[("suicidality_adult", 1)], "psych_hosp", 1)?,
                        prop_where(ds, &[("suicidality_adult", 0)], "psych_hosp", 1)?,
                    ])
                }),
            ),
            Finding::new(
                46,
                "about half the men played high-school football",
                FT::DescriptiveStatistics,
                Check::Tolerance { alpha: 0.03 },
                Box::new(|ds| Ok(vec![prop(ds, "football", 1)?])),
            ),
            Finding::new(
                47,
                "depression and anxiety co-occur",
                FT::CorrelationPearson,
                Check::Sign,
                Box::new(|ds| Ok(vec![pearson_named(ds, "dep_adult", "anxiety")?])),
            ),
            Finding::new(
                48,
                "smoking unrelated to adult depression in this sample",
                FT::MeanDifferenceBetweenClass,
                Check::Tolerance { alpha: 0.025 },
                Box::new(|ds| {
                    Ok(vec![
                        prop_where(ds, &[("smoker", 1)], "dep_adult", 1)?
                            - prop_where(ds, &[("smoker", 0)], "dep_adult", 1)?,
                    ])
                }),
            ),
            Finding::new(
                49,
                "rank correlation between adolescent and adult depression",
                FT::CorrelationSpearman,
                Check::Sign,
                Box::new(|ds| Ok(vec![spearman_named(ds, "dep_adolescent", "dep_adult")?])),
            ),
        ]
    }
}
