//! Fairman, Furr-Holden & Johnson (2019): marijuana as the first substance
//! used (NSDUH). 19 findings (ids 19–37), heavy on temporal mean-difference
//! comparisons across survey years — the shape that makes this large-n,
//! small-domain dataset noise-sensitive at low ε. Also supplies the paper's
//! Figure 1 visual finding.

use crate::error::Result;
use crate::finding::{Check, Finding, FindingType as FT};
use crate::papers::helpers::*;
use crate::publication::Publication;
use crate::visual::VisualFinding;
use synrd_data::{BenchmarkDataset, Dataset};

/// Code of "marijuana" in `first_substance`.
const MJ: u32 = 3;
/// Code of "cigarettes".
const CIG: u32 = 2;
/// Code of "alcohol".
const ALC: u32 = 1;
/// Code of "other".
const OTHER: u32 = 4;

/// Proportion using `substance` first within a year-quarter window
/// (year codes 0..16 split into 4 quarters).
fn first_rate_in_quarter(ds: &Dataset, substance: u32, quarter: u32) -> Result<f64> {
    let year = ds.domain().index_of("year")?;
    let lo = quarter * 4;
    let hi = lo + 4;
    let sub = ds.filter_rows(move |r| {
        let y = r.get(year);
        y >= lo && y < hi
    });
    if sub.is_empty() {
        return Ok(f64::NAN);
    }
    prop(&sub, "first_substance", substance)
}

/// Rate of severe outcomes (severity code >= 5) among rows whose first
/// substance is `substance`.
fn severe_rate(ds: &Dataset, substance: u32) -> Result<f64> {
    let first = ds.domain().index_of("first_substance")?;
    let sub = ds.filter_rows(move |r| r.get(first) == substance);
    if sub.is_empty() {
        return Ok(f64::NAN);
    }
    let outcome = sub.domain().index_of("outcome")?;
    let counts = sub.value_counts(outcome)?;
    let total: f64 = counts.iter().sum();
    Ok(counts[5..].iter().sum::<f64>() / total)
}

/// The Fairman et al. 2019 publication.
pub struct Fairman2019;

impl Publication for Fairman2019 {
    fn dataset(&self) -> BenchmarkDataset {
        BenchmarkDataset::Fairman2019
    }

    fn findings(&self) -> Vec<Finding> {
        let race_vs_white = |id: u32, name: &'static str, race: u32, white_higher: bool| {
            Finding::new(
                id,
                name,
                FT::MeanDifferenceBetweenClass,
                Check::Order,
                Box::new(move |ds: &Dataset| {
                    let a = prop_where(ds, &[("race", race)], "first_substance", MJ)?;
                    let w = prop_where(ds, &[("race", 0)], "first_substance", MJ)?;
                    Ok(if white_higher { vec![w, a] } else { vec![a, w] })
                }),
            )
        };
        vec![
            Finding::new(
                19,
                "marijuana-first more likely among males",
                FT::MeanDifferenceBetweenClass,
                Check::Order,
                Box::new(|ds| {
                    Ok(vec![
                        prop_where(ds, &[("sex", 0)], "first_substance", MJ)?,
                        prop_where(ds, &[("sex", 1)], "first_substance", MJ)?,
                    ])
                }),
            ),
            race_vs_white(20, "marijuana-first: Black > White", 1, false),
            race_vs_white(21, "marijuana-first: AIAN > White", 4, false),
            race_vs_white(22, "marijuana-first: multiracial > White", 6, false),
            race_vs_white(23, "marijuana-first: Hispanic > White", 2, false),
            race_vs_white(24, "marijuana-first: White > Asian", 3, true),
            Finding::new(
                25,
                "marijuana-first rises from early to late years",
                FT::MeanDifferenceTemporal,
                Check::Order,
                Box::new(|ds| {
                    Ok(vec![
                        first_rate_in_quarter(ds, MJ, 3)?,
                        first_rate_in_quarter(ds, MJ, 0)?,
                    ])
                }),
            ),
            Finding::new(
                26,
                "cigarette-first declines from early to late years",
                FT::MeanDifferenceTemporal,
                Check::Order,
                Box::new(|ds| {
                    Ok(vec![
                        first_rate_in_quarter(ds, CIG, 0)?,
                        first_rate_in_quarter(ds, CIG, 3)?,
                    ])
                }),
            ),
            Finding::new(
                27,
                "marijuana-first increases monotonically across year quarters",
                FT::MeanDifferenceTemporal,
                Check::Order,
                Box::new(|ds| (0..4).map(|q| first_rate_in_quarter(ds, MJ, q)).collect()),
            ),
            Finding::new(
                28,
                "cigarette-first decreases monotonically across year quarters",
                FT::MeanDifferenceTemporal,
                Check::Order,
                Box::new(|ds| (0..4).map(|q| first_rate_in_quarter(ds, CIG, q)).collect()),
            ),
            Finding::new(
                29,
                "alcohol-first stays stable across year quarters",
                FT::MeanDifferenceTemporal,
                Check::Tolerance { alpha: 0.025 },
                Box::new(|ds| (0..4).map(|q| first_rate_in_quarter(ds, ALC, q)).collect()),
            ),
            Finding::new(
                30,
                "heavy outcomes: marijuana-first > alcohol-first",
                FT::CoefficientDifference,
                Check::Order,
                Box::new(|ds| Ok(vec![severe_rate(ds, MJ)?, severe_rate(ds, ALC)?])),
            ),
            Finding::new(
                31,
                "heavy outcomes: marijuana-first > cigarette-first",
                FT::CoefficientDifference,
                Check::Order,
                Box::new(|ds| Ok(vec![severe_rate(ds, MJ)?, severe_rate(ds, CIG)?])),
            ),
            Finding::new(
                32,
                "adjusted odds of heavy use favor marijuana-first",
                FT::CoefficientDifference,
                Check::Order,
                Box::new(|ds| {
                    // ln OR of severe outcome for mj-first vs everyone else,
                    // against alcohol-first vs everyone else.
                    let first = ds.domain().index_of("first_substance")?;
                    let outcome = ds.domain().index_of("outcome")?;
                    let ln_or = |code: u32| -> Result<f64> {
                        let mut t = [0.0f64; 4];
                        for r in 0..ds.n_rows() {
                            let row = ds.row(r);
                            let e = u32::from(row.get(first) == code);
                            let o = u32::from(row.get(outcome) >= 5);
                            let idx = match (e, o) {
                                (1, 1) => 0,
                                (1, 0) => 1,
                                (0, 1) => 2,
                                _ => 3,
                            };
                            t[idx] += 1.0;
                        }
                        Ok(synrd_stats::odds_ratio_2x2(t[0], t[1], t[2], t[3]).ln())
                    };
                    Ok(vec![ln_or(MJ)?, ln_or(ALC)?])
                }),
            ),
            Finding::new(
                33,
                "marijuana-first more common among older youths",
                FT::MeanDifferenceBetweenClass,
                Check::Order,
                Box::new(|ds| {
                    let age = ds.domain().index_of("age")?;
                    let older = ds.filter_rows(move |r| r.get(age) >= 8);
                    let younger = ds.filter_rows(move |r| r.get(age) < 4);
                    let p = |x: &Dataset| -> Result<f64> {
                        if x.is_empty() {
                            return Ok(f64::NAN);
                        }
                        prop(x, "first_substance", MJ)
                    };
                    Ok(vec![p(&older)?, p(&younger)?])
                }),
            ),
            Finding::new(
                34,
                "severity among marijuana-first rises with age group",
                FT::MeanDifferenceTemporal,
                Check::Order,
                Box::new(|ds| {
                    let age = ds.domain().index_of("age")?;
                    let first = ds.domain().index_of("first_substance")?;
                    let rate = |lo: u32, hi: u32| -> Result<f64> {
                        let sub = ds.filter_rows(move |r| {
                            r.get(first) == MJ && r.get(age) >= lo && r.get(age) < hi
                        });
                        if sub.n_rows() < 10 {
                            return Ok(f64::NAN);
                        }
                        let outcome = sub.domain().index_of("outcome")?;
                        let counts = sub.value_counts(outcome)?;
                        let total: f64 = counts.iter().sum();
                        Ok(counts[5..].iter().sum::<f64>() / total)
                    };
                    Ok(vec![rate(12, 18)?, rate(0, 6)?])
                }),
            ),
            Finding::new(
                35,
                "overall marijuana-first initiation rate",
                FT::DescriptiveStatistics,
                Check::Tolerance { alpha: 0.008 },
                Box::new(|ds| Ok(vec![prop(ds, "first_substance", MJ)?])),
            ),
            Finding::new(
                36,
                "other-substance-first stays rare and stable",
                FT::MeanDifferenceTemporal,
                Check::Tolerance { alpha: 0.006 },
                Box::new(|ds| {
                    (0..4)
                        .map(|q| first_rate_in_quarter(ds, OTHER, q))
                        .collect()
                }),
            ),
            Finding::new(
                37,
                "marijuana-first trend correlates with survey year",
                FT::CorrelationPearson,
                Check::Sign,
                Box::new(|ds| {
                    let year = col(ds, "year")?;
                    let first = codes(ds, "first_substance")?;
                    let indicator: Vec<f64> = first.iter().map(|&c| f64::from(c == MJ)).collect();
                    Ok(vec![synrd_stats::pearson(&year, &indicator)?])
                }),
            ),
        ]
    }

    fn visual(&self) -> Option<VisualFinding> {
        Some(VisualFinding::fairman_figure1())
    }
}
