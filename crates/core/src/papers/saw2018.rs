//! Saw, Chang & Chan (2018): cross-sectional and longitudinal disparities in
//! STEM career aspirations (HSLS:09). 15 findings (ids 90–104), including
//! the benchmark-wide hard finding **#96**: persistence/emergence rates by
//! SES ("31.9% and 29.9% ... than their high SES peers (45.1% and 9.0%)"),
//! a six-component conditional statistic that demands 3-way structure from
//! the synthesizer.

use crate::error::Result;
use crate::finding::{Check, Finding, FindingType as FT};
use crate::papers::helpers::*;
use crate::publication::Publication;
use synrd_data::{BenchmarkDataset, Dataset};

/// P(stem_asp_11 = 1 | stem_asp_9 = given, ses = ses_code).
fn transition_rate(ds: &Dataset, asp9: u32, ses_code: u32) -> Result<f64> {
    prop_where(
        ds,
        &[("stem_asp_9", asp9), ("ses", ses_code)],
        "stem_asp_11",
        1,
    )
}

/// The Saw et al. 2018 publication.
pub struct Saw2018;

impl Publication for Saw2018 {
    fn dataset(&self) -> BenchmarkDataset {
        BenchmarkDataset::Saw2018
    }

    fn findings(&self) -> Vec<Finding> {
        vec![
            Finding::new(
                90,
                "boys aspire to STEM careers more than girls in 9th grade",
                FT::MeanDifferenceBetweenClass,
                Check::Order,
                Box::new(|ds| {
                    Ok(vec![
                        prop_where(ds, &[("sex", 0)], "stem_asp_9", 1)?,
                        prop_where(ds, &[("sex", 1)], "stem_asp_9", 1)?,
                    ])
                }),
            ),
            Finding::new(
                91,
                "the 9th-grade gender gap is large (~20 points)",
                FT::MeanDifferenceBetweenClass,
                Check::Tolerance { alpha: 0.04 },
                Box::new(|ds| {
                    Ok(vec![
                        prop_where(ds, &[("sex", 0)], "stem_asp_9", 1)?
                            - prop_where(ds, &[("sex", 1)], "stem_asp_9", 1)?,
                    ])
                }),
            ),
            Finding::new(
                92,
                "high-SES students aspire more than low-SES students",
                FT::MeanDifferenceBetweenClass,
                Check::Order,
                Box::new(|ds| {
                    Ok(vec![
                        prop_where(ds, &[("ses", 3)], "stem_asp_9", 1)?,
                        prop_where(ds, &[("ses", 0)], "stem_asp_9", 1)?,
                    ])
                }),
            ),
            Finding::new(
                93,
                "persistence far exceeds emergence",
                FT::MeanDifferenceTemporal,
                Check::Order,
                Box::new(|ds| {
                    Ok(vec![
                        prop_where(ds, &[("stem_asp_9", 1)], "stem_asp_11", 1)?,
                        prop_where(ds, &[("stem_asp_9", 0)], "stem_asp_11", 1)?,
                    ])
                }),
            ),
            Finding::new(
                94,
                "overall aspiration declines from 9th to 11th grade",
                FT::MeanDifferenceTemporal,
                Check::Order,
                Box::new(|ds| {
                    Ok(vec![
                        prop(ds, "stem_asp_9", 1)?,
                        prop(ds, "stem_asp_11", 1)?,
                    ])
                }),
            ),
            Finding::new(
                95,
                "boys persist in their aspirations more than girls",
                FT::MeanDifferenceBetweenClass,
                Check::Order,
                Box::new(|ds| {
                    Ok(vec![
                        prop_where(ds, &[("stem_asp_9", 1), ("sex", 0)], "stem_asp_11", 1)?,
                        prop_where(ds, &[("stem_asp_9", 1), ("sex", 1)], "stem_asp_11", 1)?,
                    ])
                }),
            ),
            Finding::new(
                96,
                "lower-SES groups have fewer persisters and emergers [HARD]",
                FT::MeanDifferenceBetweenClass,
                Check::Tolerance { alpha: 0.035 },
                Box::new(|ds| {
                    Ok(vec![
                        transition_rate(ds, 1, 0)?, // persist | low SES (0.299)
                        transition_rate(ds, 1, 1)?, // persist | low-middle (0.319)
                        transition_rate(ds, 1, 3)?, // persist | high (0.451)
                        transition_rate(ds, 0, 0)?, // emerge | low (0.054)
                        transition_rate(ds, 0, 1)?, // emerge | low-middle (0.061)
                        transition_rate(ds, 0, 3)?, // emerge | high (0.090)
                    ])
                }),
            ),
            Finding::new(
                97,
                "emergence rises with SES",
                FT::MeanDifferenceTemporal,
                Check::Order,
                Box::new(|ds| Ok(vec![transition_rate(ds, 0, 3)?, transition_rate(ds, 0, 0)?])),
            ),
            Finding::new(
                98,
                "Asian students aspire more than White students",
                FT::MeanDifferenceBetweenClass,
                Check::Order,
                Box::new(|ds| {
                    Ok(vec![
                        prop_where(ds, &[("race", 3)], "stem_asp_9", 1)?,
                        prop_where(ds, &[("race", 0)], "stem_asp_9", 1)?,
                    ])
                }),
            ),
            Finding::new(
                99,
                "White students aspire more than Black students",
                FT::MeanDifferenceBetweenClass,
                Check::Order,
                Box::new(|ds| {
                    Ok(vec![
                        prop_where(ds, &[("race", 0)], "stem_asp_9", 1)?,
                        prop_where(ds, &[("race", 1)], "stem_asp_9", 1)?,
                    ])
                }),
            ),
            Finding::new(
                100,
                "math achievement predicts persistence",
                FT::MeanDifferenceTemporal,
                Check::Order,
                Box::new(|ds| {
                    let math = ds.domain().index_of("math9")?;
                    let asp9 = ds.domain().index_of("stem_asp_9")?;
                    let hi = ds.filter_rows(move |r| r.get(asp9) == 1 && r.get(math) >= 9);
                    let lo = ds.filter_rows(move |r| r.get(asp9) == 1 && r.get(math) < 5);
                    let p = |x: &Dataset| -> Result<f64> {
                        if x.is_empty() {
                            return Ok(f64::NAN);
                        }
                        prop(x, "stem_asp_11", 1)
                    };
                    Ok(vec![p(&hi)?, p(&lo)?])
                }),
            ),
            Finding::new(
                101,
                "low-SES Black/Hispanic boys trail high-SES White boys",
                FT::MeanDifferenceBetweenClass,
                Check::Order,
                Box::new(|ds| {
                    let race = ds.domain().index_of("race")?;
                    let ses = ds.domain().index_of("ses")?;
                    let sex = ds.domain().index_of("sex")?;
                    let privileged = ds.filter_rows(move |r| {
                        r.get(sex) == 0 && r.get(race) == 0 && r.get(ses) == 3
                    });
                    let marginalized = ds.filter_rows(move |r| {
                        r.get(sex) == 0 && (r.get(race) == 1 || r.get(race) == 2) && r.get(ses) <= 1
                    });
                    let p = |x: &Dataset| -> Result<f64> {
                        if x.is_empty() {
                            return Ok(f64::NAN);
                        }
                        prop(x, "stem_asp_9", 1)
                    };
                    Ok(vec![p(&privileged)?, p(&marginalized)?])
                }),
            ),
            Finding::new(
                102,
                "girls emerge into STEM aspirations less than boys",
                FT::MeanDifferenceTemporal,
                Check::Order,
                Box::new(|ds| {
                    Ok(vec![
                        prop_where(ds, &[("stem_asp_9", 0), ("sex", 0)], "stem_asp_11", 1)?,
                        prop_where(ds, &[("stem_asp_9", 0), ("sex", 1)], "stem_asp_11", 1)?,
                    ])
                }),
            ),
            Finding::new(
                103,
                "SES and parental education move together",
                FT::CorrelationPearson,
                Check::Sign,
                Box::new(|ds| Ok(vec![pearson_named(ds, "ses", "parent_edu")?])),
            ),
            Finding::new(
                104,
                "about a fifth of 9th graders aspire to STEM careers",
                FT::DescriptiveStatistics,
                Check::Tolerance { alpha: 0.015 },
                Box::new(|ds| Ok(vec![prop(ds, "stem_asp_9", 1)?])),
            ),
        ]
    }
}
