//! Pierce & Quiroz (2019): who matters most? Social support, social strain,
//! and emotions (ACL). 14 findings (ids 76–89) built around two regressions —
//! positive emotions on the three support scales, negative emotions on the
//! three strain scales — with income/education/age controls, mirroring the
//! paper's mixed-effects models (approximated by OLS with wave controls; see
//! DESIGN.md §3).

use crate::error::Result;
use crate::finding::{Check, Finding, FindingType as FT};
use crate::papers::helpers::*;
use crate::publication::Publication;
use synrd_data::{BenchmarkDataset, Dataset};
use synrd_stats::LinearFit;

/// pos_emotions ~ spouse_support + child_support + friend_support + controls.
fn positive_model(ds: &Dataset) -> Result<LinearFit> {
    ols_named(
        ds,
        "pos_emotions",
        &[
            "spouse_support",
            "child_support",
            "friend_support",
            "income",
            "education",
            "age",
        ],
    )
}

/// neg_emotions ~ spouse_strain + child_strain + friend_strain + controls.
fn negative_model(ds: &Dataset) -> Result<LinearFit> {
    ols_named(
        ds,
        "neg_emotions",
        &[
            "spouse_strain",
            "child_strain",
            "friend_strain",
            "income",
            "education",
            "age",
        ],
    )
}

/// The Pierce & Quiroz 2019 publication.
pub struct Pierce2019;

impl Publication for Pierce2019 {
    fn dataset(&self) -> BenchmarkDataset {
        BenchmarkDataset::Pierce2019
    }

    fn findings(&self) -> Vec<Finding> {
        vec![
            Finding::new(
                76,
                "spousal support increases positive emotions",
                FT::FixedCoefficientSign,
                Check::Sign,
                Box::new(|ds| Ok(vec![positive_model(ds)?.coefficients[1]])),
            ),
            Finding::new(
                77,
                "spousal strain increases negative emotions",
                FT::CoefficientDifference,
                Check::Sign,
                Box::new(|ds| Ok(vec![negative_model(ds)?.coefficients[1]])),
            ),
            Finding::new(
                78,
                "child-based strain increases negative emotions",
                FT::CoefficientDifference,
                Check::Sign,
                Box::new(|ds| Ok(vec![negative_model(ds)?.coefficients[2]])),
            ),
            Finding::new(
                79,
                "spousal support outweighs friend support",
                FT::CoefficientDifference,
                Check::Order,
                Box::new(|ds| {
                    let fit = positive_model(ds)?;
                    Ok(vec![fit.coefficients[1], fit.coefficients[3]])
                }),
            ),
            Finding::new(
                80,
                "spousal support outweighs child support",
                FT::CoefficientDifference,
                Check::Order,
                Box::new(|ds| {
                    let fit = positive_model(ds)?;
                    Ok(vec![fit.coefficients[1], fit.coefficients[2]])
                }),
            ),
            Finding::new(
                81,
                "spousal strain outweighs child strain",
                FT::CoefficientDifference,
                Check::Order,
                Box::new(|ds| {
                    let fit = negative_model(ds)?;
                    Ok(vec![fit.coefficients[1], fit.coefficients[2]])
                }),
            ),
            Finding::new(
                82,
                "child strain outweighs friend strain",
                FT::CoefficientDifference,
                Check::Order,
                Box::new(|ds| {
                    let fit = negative_model(ds)?;
                    Ok(vec![fit.coefficients[2], fit.coefficients[3]])
                }),
            ),
            Finding::new(
                83,
                "friend strain has no reliable effect",
                FT::CoefficientDifference,
                Check::Tolerance { alpha: 0.06 },
                Box::new(|ds| Ok(vec![negative_model(ds)?.coefficients[3]])),
            ),
            Finding::new(
                84,
                "positive emotions correlate with spousal support",
                FT::CorrelationPearson,
                Check::Sign,
                Box::new(|ds| Ok(vec![pearson_named(ds, "pos_emotions", "spouse_support")?])),
            ),
            Finding::new(
                85,
                "negative emotions correlate with spousal strain",
                FT::CorrelationPearson,
                Check::Sign,
                Box::new(|ds| Ok(vec![pearson_named(ds, "neg_emotions", "spouse_strain")?])),
            ),
            Finding::new(
                86,
                "high spousal support raises positive emotions",
                FT::MeanDifferenceBetweenClass,
                Check::Order,
                Box::new(|ds| {
                    let sup = ds.domain().index_of("spouse_support")?;
                    let hi = ds.filter_rows(move |r| r.get(sup) >= 5);
                    let lo = ds.filter_rows(move |r| r.get(sup) < 3);
                    let m = |x: &Dataset| -> Result<f64> {
                        if x.is_empty() {
                            return Ok(f64::NAN);
                        }
                        let idx = x.domain().index_of("pos_emotions")?;
                        Ok(x.mean_of(idx)?)
                    };
                    Ok(vec![m(&hi)?, m(&lo)?])
                }),
            ),
            Finding::new(
                87,
                "high spousal strain raises negative emotions",
                FT::MeanDifferenceBetweenClass,
                Check::Order,
                Box::new(|ds| {
                    let strain = ds.domain().index_of("spouse_strain")?;
                    let hi = ds.filter_rows(move |r| r.get(strain) >= 5);
                    let lo = ds.filter_rows(move |r| r.get(strain) < 3);
                    let m = |x: &Dataset| -> Result<f64> {
                        if x.is_empty() {
                            return Ok(f64::NAN);
                        }
                        let idx = x.domain().index_of("neg_emotions")?;
                        Ok(x.mean_of(idx)?)
                    };
                    Ok(vec![m(&hi)?, m(&lo)?])
                }),
            ),
            Finding::new(
                88,
                "spousal support effect survives the controls",
                FT::CoefficientDifference,
                Check::Sign,
                Box::new(|ds| Ok(vec![positive_model(ds)?.coefficients[1]])),
            ),
            Finding::new(
                89,
                "high friend support raises positive emotions",
                FT::MeanDifferenceBetweenClass,
                Check::Order,
                Box::new(|ds| {
                    let sup = ds.domain().index_of("friend_support")?;
                    let hi = ds.filter_rows(move |r| r.get(sup) >= 5);
                    let lo = ds.filter_rows(move |r| r.get(sup) < 3);
                    let m = |x: &Dataset| -> Result<f64> {
                        if x.is_empty() {
                            return Ok(f64::NAN);
                        }
                        let idx = x.domain().index_of("pos_emotions")?;
                        Ok(x.mean_of(idx)?)
                    };
                    Ok(vec![m(&hi)?, m(&lo)?])
                }),
            ),
        ]
    }
}
