//! Assari & Bazargan (2019): baseline obesity and 25-year cerebrovascular
//! mortality, with race-specific effects (ACL study). 18 findings, including
//! the benchmark-wide hard finding **#4** ("people had 12.53 years of
//! schooling at baseline, 95% CI 12.34–12.73") whose tolerance band is the
//! CI half-width over a 21-level variable.

use crate::finding::{Check, Finding, FindingType as FT};
use crate::papers::helpers::*;
use crate::publication::Publication;
use synrd_data::BenchmarkDataset;

/// The Assari & Bazargan 2019 publication.
pub struct Assari2019;

impl Publication for Assari2019 {
    fn dataset(&self) -> BenchmarkDataset {
        BenchmarkDataset::Assari2019
    }

    fn findings(&self) -> Vec<Finding> {
        vec![
            Finding::new(
                1,
                "share of women in the sample",
                FT::DescriptiveStatistics,
                Check::Tolerance { alpha: 0.05 },
                Box::new(|ds| Ok(vec![prop(ds, "sex", 1)?])),
            ),
            Finding::new(
                2,
                "mean baseline age",
                FT::DescriptiveStatistics,
                Check::Tolerance { alpha: 2.5 },
                Box::new(|ds| {
                    let idx = ds.domain().index_of("age")?;
                    Ok(vec![ds.mean_of(idx)?])
                }),
            ),
            Finding::new(
                3,
                "baseline obesity prevalence",
                FT::DescriptiveStatistics,
                Check::Tolerance { alpha: 0.04 },
                Box::new(|ds| Ok(vec![prop(ds, "obesity", 1)?])),
            ),
            Finding::new(
                4,
                "mean years of schooling 12.53 (95% CI 12.34-12.73) [HARD]",
                FT::DescriptiveStatistics,
                Check::Tolerance { alpha: 0.098 },
                Box::new(|ds| {
                    let idx = ds.domain().index_of("education")?;
                    Ok(vec![ds.mean_of(idx)?])
                }),
            ),
            Finding::new(
                5,
                "obesity not associated with cerebrovascular death overall",
                FT::CorrelationPearson,
                Check::Tolerance { alpha: 0.04 },
                Box::new(|ds| Ok(vec![pearson_named(ds, "obesity", "cerebro_death")?])),
            ),
            Finding::new(
                6,
                "obesity-death association stronger for Black than White",
                FT::CoefficientDifference,
                Check::Order,
                Box::new(|ds| {
                    Ok(vec![
                        pearson_where(ds, &[("race", 1)], "obesity", "cerebro_death")?,
                        pearson_where(ds, &[("race", 0)], "obesity", "cerebro_death")?,
                    ])
                }),
            ),
            Finding::new(
                7,
                "obesity predicts death among Black respondents (adjusted)",
                FT::FixedCoefficientSign,
                Check::Sign,
                Box::new(|ds| {
                    // Multivariable model within the Black subsample, as in
                    // the paper's race-specific analysis: obesity coefficient
                    // adjusted for age and smoking.
                    let race = ds.domain().index_of("race")?;
                    let black = ds.filter_rows(move |r| r.get(race) == 1);
                    if black.n_rows() < 50 {
                        return Ok(vec![f64::NAN]);
                    }
                    let fit =
                        logistic_named(&black, "cerebro_death", &["obesity", "age", "smoking"])?;
                    Ok(vec![fit.coefficients[1]])
                }),
            ),
            Finding::new(
                8,
                "obesity odds ratio larger for Black than White",
                FT::CoefficientDifference,
                Check::Order,
                Box::new(|ds| {
                    let black = ds.filter_rows({
                        let idx = ds.domain().index_of("race")?;
                        move |r| r.get(idx) == 1
                    });
                    let white = ds.filter_rows({
                        let idx = ds.domain().index_of("race")?;
                        move |r| r.get(idx) == 0
                    });
                    Ok(vec![
                        log_odds_ratio(&black, "obesity", "cerebro_death")?,
                        log_odds_ratio(&white, "obesity", "cerebro_death")?,
                    ])
                }),
            ),
            Finding::new(
                9,
                "death rises with age",
                FT::MeanDifferenceBetweenClass,
                Check::Order,
                Box::new(|ds| {
                    let age = ds.domain().index_of("age")?;
                    let older = ds.filter_rows(move |r| r.get(age) >= 11);
                    let younger = ds.filter_rows(move |r| r.get(age) < 6);
                    let d = |x: &synrd_data::Dataset| -> crate::error::Result<f64> {
                        if x.is_empty() {
                            return Ok(f64::NAN);
                        }
                        prop(x, "cerebro_death", 1)
                    };
                    Ok(vec![d(&older)?, d(&younger)?])
                }),
            ),
            Finding::new(
                10,
                "death higher among smokers",
                FT::MeanDifferenceBetweenClass,
                Check::Order,
                Box::new(|ds| {
                    Ok(vec![
                        prop_where(ds, &[("smoking", 1)], "cerebro_death", 1)?,
                        prop_where(ds, &[("smoking", 0)], "cerebro_death", 1)?,
                    ])
                }),
            ),
            Finding::new(
                11,
                "death higher with hypertension",
                FT::MeanDifferenceBetweenClass,
                Check::Order,
                Box::new(|ds| {
                    Ok(vec![
                        prop_where(ds, &[("hypertension", 1)], "cerebro_death", 1)?,
                        prop_where(ds, &[("hypertension", 0)], "cerebro_death", 1)?,
                    ])
                }),
            ),
            Finding::new(
                12,
                "education is protective for death",
                FT::FixedCoefficientSign,
                Check::Sign,
                Box::new(|ds| Ok(vec![pearson_named(ds, "education", "cerebro_death")?])),
            ),
            Finding::new(
                13,
                "Black respondents report lower income",
                FT::MeanDifferenceBetweenClass,
                Check::Order,
                Box::new(|ds| {
                    Ok(vec![
                        mean_where(ds, &[("race", 1)], "income")?,
                        mean_where(ds, &[("race", 0)], "income")?,
                    ])
                }),
            ),
            Finding::new(
                14,
                "Black respondents report fewer education years",
                FT::MeanDifferenceBetweenClass,
                Check::Order,
                Box::new(|ds| {
                    Ok(vec![
                        mean_where(ds, &[("race", 1)], "education")?,
                        mean_where(ds, &[("race", 0)], "education")?,
                    ])
                }),
            ),
            Finding::new(
                15,
                "chronic conditions track worse self-rated health",
                FT::CorrelationPearson,
                Check::Sign,
                Box::new(|ds| {
                    Ok(vec![pearson_named(
                        ds,
                        "chronic_conditions",
                        "self_rated_health",
                    )?])
                }),
            ),
            Finding::new(
                16,
                "depression higher with multiple chronic conditions",
                FT::MeanDifferenceBetweenClass,
                Check::Order,
                Box::new(|ds| {
                    let chronic = ds.domain().index_of("chronic_conditions")?;
                    let many = ds.filter_rows(move |r| r.get(chronic) >= 2);
                    let few = ds.filter_rows(move |r| r.get(chronic) < 2);
                    let d = |x: &synrd_data::Dataset| -> crate::error::Result<f64> {
                        if x.is_empty() {
                            return Ok(f64::NAN);
                        }
                        prop(x, "depression", 1)
                    };
                    Ok(vec![d(&many)?, d(&few)?])
                }),
            ),
            Finding::new(
                17,
                "cerebrovascular death rate",
                FT::DescriptiveStatistics,
                Check::Tolerance { alpha: 0.012 },
                Box::new(|ds| Ok(vec![prop(ds, "cerebro_death", 1)?])),
            ),
            Finding::new(
                18,
                "chronic conditions accumulate with age",
                FT::CorrelationPearson,
                Check::Sign,
                Box::new(|ds| Ok(vec![pearson_named(ds, "age", "chronic_conditions")?])),
            ),
        ]
    }
}
