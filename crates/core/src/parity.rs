//! Parity aggregation: turning per-cell results into Figure 4's series
//! (mean parity vs ε and mean parity-variance vs ε, per synthesizer).

use crate::benchmark::{CellStatus, PaperReport};
use crate::error::{Result, SynrdError};
use synrd_synth::SynthKind;

/// Aggregated series per synthesizer across papers.
#[derive(Debug, Clone)]
pub struct AggregateSeries {
    /// ε grid.
    pub epsilons: Vec<f64>,
    /// Per synthesizer: mean parity per ε (NaN where nothing ran).
    pub parity: Vec<(SynthKind, Vec<f64>)>,
    /// Per synthesizer: mean seed-variance per ε.
    pub variance: Vec<(SynthKind, Vec<f64>)>,
}

/// Average Figure 3 cells over findings and papers into Figure 4 series.
///
/// # Errors
/// Every report must share the first report's ε grid (bit-for-bit) and
/// synthesizer ordering — cells are indexed positionally, so averaging
/// heterogeneous grids would silently mix unrelated (synthesizer, ε)
/// coordinates. A mismatching report yields [`SynrdError::Config`] naming
/// the offending paper.
pub fn aggregate(reports: &[PaperReport]) -> Result<AggregateSeries> {
    let Some(first) = reports.first() else {
        return Ok(AggregateSeries {
            epsilons: Vec::new(),
            parity: Vec::new(),
            variance: Vec::new(),
        });
    };
    for report in &reports[1..] {
        if report.epsilons.len() != first.epsilons.len()
            || report
                .epsilons
                .iter()
                .zip(&first.epsilons)
                .any(|(a, b)| a.to_bits() != b.to_bits())
        {
            return Err(SynrdError::Config(format!(
                "aggregate: report '{}' uses a different epsilon grid than '{}' \
                 ({:?} vs {:?})",
                report.paper_id, first.paper_id, report.epsilons, first.epsilons
            )));
        }
        if report.synthesizers != first.synthesizers {
            return Err(SynrdError::Config(format!(
                "aggregate: report '{}' uses a different synthesizer set/order than '{}' \
                 ({:?} vs {:?})",
                report.paper_id, first.paper_id, report.synthesizers, first.synthesizers
            )));
        }
    }
    let epsilons = first.epsilons.clone();
    let synths = first.synthesizers.clone();
    let mut parity = Vec::with_capacity(synths.len());
    let mut variance = Vec::with_capacity(synths.len());
    for (s_idx, &kind) in synths.iter().enumerate() {
        let mut p_series = Vec::with_capacity(epsilons.len());
        let mut v_series = Vec::with_capacity(epsilons.len());
        for e_idx in 0..epsilons.len() {
            let mut p_sum = 0.0;
            let mut v_sum = 0.0;
            let mut count = 0usize;
            for report in reports {
                let cell = &report.cells[s_idx][e_idx];
                if cell.status == CellStatus::Ok {
                    let p = cell.mean_parity();
                    let v = cell.mean_variance();
                    if p.is_finite() {
                        p_sum += p;
                        v_sum += if v.is_finite() { v } else { 0.0 };
                        count += 1;
                    }
                }
            }
            if count > 0 {
                p_series.push(p_sum / count as f64);
                v_series.push(v_sum / count as f64);
            } else {
                p_series.push(f64::NAN);
                v_series.push(f64::NAN);
            }
        }
        parity.push((kind, p_series));
        variance.push((kind, v_series));
    }
    Ok(AggregateSeries {
        epsilons,
        parity,
        variance,
    })
}

/// Per-paper mean parity for one synthesizer across ε (Figure 3 block
/// summary).
pub fn paper_summary(report: &PaperReport) -> Vec<(SynthKind, f64)> {
    report
        .synthesizers
        .iter()
        .enumerate()
        .map(|(s_idx, &kind)| {
            let mut sum = 0.0;
            let mut count = 0usize;
            for cell in &report.cells[s_idx] {
                if cell.status == CellStatus::Ok {
                    let p = cell.mean_parity();
                    if p.is_finite() {
                        sum += p;
                        count += 1;
                    }
                }
            }
            (
                kind,
                if count > 0 {
                    sum / count as f64
                } else {
                    f64::NAN
                },
            )
        })
        .collect()
}

/// Findings that never reproduce for any synthesizer at any ε — §7.2's
/// "some findings were never reproduced by any of the synthesizers".
pub fn never_reproduced(report: &PaperReport, threshold: f64) -> Vec<u32> {
    let mut out = Vec::new();
    for (f_idx, &(id, _, _)) in report.findings.iter().enumerate() {
        let mut any_ok_cell = false;
        let mut max_parity = 0.0f64;
        for row in &report.cells {
            for cell in row {
                if cell.status == CellStatus::Ok && cell.parity[f_idx].is_finite() {
                    any_ok_cell = true;
                    max_parity = max_parity.max(cell.parity[f_idx]);
                }
            }
        }
        if any_ok_cell && max_parity < threshold {
            out.push(id);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::CellOutcome;
    use crate::finding::FindingType;

    fn toy_report(parities: Vec<Vec<f64>>) -> PaperReport {
        // One synthesizer, len(parities) epsilons, 2 findings.
        PaperReport {
            paper_id: "toy",
            paper_name: "Toy",
            findings: vec![
                (1, "a", FindingType::DescriptiveStatistics),
                (2, "b", FindingType::CorrelationPearson),
            ],
            epsilons: (0..parities.len()).map(|i| i as f64 + 1.0).collect(),
            synthesizers: vec![synrd_synth::SynthKind::Mst],
            cells: vec![parities
                .into_iter()
                .map(|p| CellOutcome {
                    seed_variance: vec![0.01; p.len()],
                    parity: p,
                    status: CellStatus::Ok,
                    fit_seconds: 0.1,
                })
                .collect()],
            control: vec![1.0, 1.0],
            n_rows: 100,
        }
    }

    #[test]
    fn aggregate_averages_over_findings_and_papers() {
        let r1 = toy_report(vec![vec![1.0, 0.0], vec![0.5, 0.5]]);
        let r2 = toy_report(vec![vec![0.0, 1.0], vec![0.5, 0.5]]);
        let agg = aggregate(&[r1, r2]).unwrap();
        assert_eq!(agg.parity.len(), 1);
        let series = &agg.parity[0].1;
        assert!((series[0] - 0.5).abs() < 1e-12);
        assert!((series[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aggregate_rejects_heterogeneous_epsilon_grids() {
        // Same shape, different ε values: positional averaging would mix
        // ε=1 cells with ε=7 cells — must be an error, not a silent blend.
        let r1 = toy_report(vec![vec![1.0, 0.0], vec![0.5, 0.5]]);
        let mut r2 = toy_report(vec![vec![0.0, 1.0], vec![0.5, 0.5]]);
        r2.epsilons[1] += 5.0;
        let err = aggregate(&[r1.clone(), r2]).expect_err("mismatched grids must fail");
        assert!(err.to_string().contains("epsilon grid"), "{err}");

        // Different grid lengths likewise.
        let r3 = toy_report(vec![vec![0.0, 1.0]]);
        let err = aggregate(&[r1, r3]).expect_err("mismatched lengths must fail");
        assert!(err.to_string().contains("epsilon grid"), "{err}");
    }

    #[test]
    fn aggregate_rejects_heterogeneous_synthesizer_order() {
        let r1 = toy_report(vec![vec![1.0, 0.0], vec![0.5, 0.5]]);
        let mut r2 = toy_report(vec![vec![0.0, 1.0], vec![0.5, 0.5]]);
        r2.synthesizers = vec![synrd_synth::SynthKind::Gem];
        let err = aggregate(&[r1, r2]).expect_err("mismatched synthesizers must fail");
        assert!(err.to_string().contains("synthesizer"), "{err}");
    }

    #[test]
    fn never_reproduced_detects_hard_findings() {
        // Finding 2 never exceeds 0.3 parity.
        let r = toy_report(vec![vec![1.0, 0.2], vec![0.9, 0.3]]);
        assert_eq!(never_reproduced(&r, 0.5), vec![2]);
        assert!(never_reproduced(&r, 0.1).is_empty());
    }

    #[test]
    fn paper_summary_means_over_ok_cells() {
        let r = toy_report(vec![vec![1.0, 1.0], vec![0.0, 0.0]]);
        let summary = paper_summary(&r);
        assert_eq!(summary.len(), 1);
        assert!((summary[0].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aggregate_empty_is_empty() {
        let agg = aggregate(&[]).unwrap();
        assert!(agg.parity.is_empty());
        assert!(agg.epsilons.is_empty());
    }
}
