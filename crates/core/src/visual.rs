//! Qualitative visual findings (§7.2, Figure 1).
//!
//! A visual finding is a figure the original paper printed; reproduction is
//! judged by *subjective similarity*. We model the paper's Figure 1 — the
//! distribution of first-substance use within each racial group from
//! Fairman et al. — as a grouped proportion table, render it as an ASCII
//! bar chart for eyeballing, and quantify "subjectively similar" with the
//! mean per-group total-variation similarity.

use crate::error::Result;
use synrd_data::Dataset;

/// A grouped-distribution visual finding: for every code of `group_attr`,
/// the distribution over `value_attr`.
#[derive(Debug, Clone)]
pub struct VisualFinding {
    /// Display name.
    pub name: &'static str,
    /// Attribute whose codes index the groups (e.g. race).
    pub group_attr: &'static str,
    /// Attribute whose within-group distribution is plotted.
    pub value_attr: &'static str,
}

impl VisualFinding {
    /// Figure 1 of the paper: first-substance distribution by race group
    /// (Fairman et al.).
    pub fn fairman_figure1() -> VisualFinding {
        VisualFinding {
            name: "Fairman et al. Figure 1: first substance by race",
            group_attr: "race",
            value_attr: "first_substance",
        }
    }

    /// Proportion table `[group][value]` (rows sum to 1; NaN rows for empty
    /// groups).
    pub fn table(&self, ds: &Dataset) -> Result<Vec<Vec<f64>>> {
        let group = ds.domain().index_of(self.group_attr)?;
        let value = ds.domain().index_of(self.value_attr)?;
        let g_card = ds.domain().cardinality(group)?;
        let v_card = ds.domain().cardinality(value)?;
        let mut counts = vec![vec![0.0f64; v_card]; g_card];
        let g_col = ds.decode_column(group)?;
        let v_col = ds.decode_column(value)?;
        for (g, v) in g_col.iter().zip(&v_col) {
            counts[*g as usize][*v as usize] += 1.0;
        }
        for row in &mut counts {
            let total: f64 = row.iter().sum();
            if total > 0.0 {
                row.iter_mut().for_each(|c| *c /= total);
            } else {
                row.iter_mut().for_each(|c| *c = f64::NAN);
            }
        }
        Ok(counts)
    }

    /// Mean per-group total-variation *similarity* between two tables:
    /// `1 − ½ Σ |p − q|` averaged over groups (1 = identical, 0 = disjoint).
    /// Empty (NaN) groups are skipped on both sides.
    pub fn similarity(real: &[Vec<f64>], synth: &[Vec<f64>]) -> f64 {
        let mut total = 0.0;
        let mut groups = 0usize;
        for (p, q) in real.iter().zip(synth) {
            if p.iter().chain(q.iter()).any(|v| !v.is_finite()) {
                continue;
            }
            let tv: f64 = 0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>();
            total += 1.0 - tv;
            groups += 1;
        }
        if groups == 0 {
            return 0.0;
        }
        total / groups as f64
    }

    /// Render a table as an ASCII grouped bar chart using the dataset's
    /// attribute labels.
    pub fn render(&self, ds: &Dataset, table: &[Vec<f64>]) -> Result<String> {
        let group = ds.domain().index_of(self.group_attr)?;
        let value = ds.domain().index_of(self.value_attr)?;
        let g_attr = ds.domain().attribute(group)?;
        let v_attr = ds.domain().attribute(value)?;
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.name));
        for (g, row) in table.iter().enumerate() {
            out.push_str(&format!("  {}\n", g_attr.label(g as u32).unwrap_or("?")));
            for (v, &p) in row.iter().enumerate() {
                let bar_len = if p.is_finite() {
                    (p * 50.0).round() as usize
                } else {
                    0
                };
                out.push_str(&format!(
                    "    {:<12} {:>6.2}% |{}\n",
                    v_attr.label(v as u32).unwrap_or("?"),
                    p * 100.0,
                    "#".repeat(bar_len)
                ));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synrd_data::BenchmarkDataset;

    #[test]
    fn table_rows_are_distributions() {
        let ds = BenchmarkDataset::Fairman2019.generate(20_000, 5);
        let vf = VisualFinding::fairman_figure1();
        let table = vf.table(&ds).unwrap();
        assert_eq!(table.len(), 7); // 7 race groups
        for row in &table {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn similarity_is_one_for_identical_and_lower_for_shifted() {
        let a = vec![vec![0.5, 0.5], vec![0.9, 0.1]];
        let b = vec![vec![0.4, 0.6], vec![0.9, 0.1]];
        assert!((VisualFinding::similarity(&a, &a) - 1.0).abs() < 1e-12);
        let s = VisualFinding::similarity(&a, &b);
        assert!(s < 1.0 && s > 0.8, "s = {s}");
    }

    #[test]
    fn render_contains_labels() {
        let ds = BenchmarkDataset::Fairman2019.generate(2_000, 5);
        let vf = VisualFinding::fairman_figure1();
        let table = vf.table(&ds).unwrap();
        let text = vf.render(&ds, &table).unwrap();
        assert!(text.contains("marijuana"));
        assert!(text.contains("white"));
    }
}
