//! The [`Publication`] trait: one benchmark paper = one dataset + a set of
//! computable findings (+ optionally a visual finding).

use crate::finding::Finding;
use crate::visual::VisualFinding;
use synrd_data::{BenchmarkDataset, Dataset};

/// A reproduced peer-reviewed paper.
pub trait Publication: Send + Sync {
    /// The dataset the paper derives (Table 1 row).
    fn dataset(&self) -> BenchmarkDataset;

    /// Citation-style display name.
    fn name(&self) -> &'static str {
        self.dataset().name()
    }

    /// The paper's findings, in global-id order.
    fn findings(&self) -> Vec<Finding>;

    /// Optional qualitative visual finding (Figure 1 of the paper).
    fn visual(&self) -> Option<VisualFinding> {
        None
    }

    /// Generate the paper's "real" data at a given scale.
    fn generate(&self, n: usize, seed: u64) -> Dataset {
        self.dataset().generate(n, seed)
    }
}

/// All eight benchmark publications, in Figure 3 column order
/// (alphabetical by first author, matching Table 1).
pub fn all_publications() -> Vec<Box<dyn Publication>> {
    vec![
        Box::new(crate::papers::assari2019::Assari2019),
        Box::new(crate::papers::fairman2019::Fairman2019),
        Box::new(crate::papers::iverson2021::Iverson2021),
        Box::new(crate::papers::fruiht2018::Fruiht2018),
        Box::new(crate::papers::jeong2021::Jeong2021),
        Box::new(crate::papers::lee2021::Lee2021),
        Box::new(crate::papers::pierce2019::Pierce2019),
        Box::new(crate::papers::saw2018::Saw2018),
    ]
}

/// Look up a publication by its dataset id (e.g. `"saw2018"`).
pub fn publication_by_id(id: &str) -> Option<Box<dyn Publication>> {
    all_publications()
        .into_iter()
        .find(|p| p.dataset().id() == id)
}
