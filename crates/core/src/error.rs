//! Error taxonomy for the benchmark core.

use std::fmt;
use synrd_data::DataError;
use synrd_ml::MlError;
use synrd_stats::StatsError;
use synrd_synth::SynthError;

/// Errors surfaced by finding evaluation and benchmark execution.
#[derive(Debug, Clone)]
pub enum SynrdError {
    /// Underlying data error.
    Data(DataError),
    /// Underlying statistics error.
    Stats(StatsError),
    /// Underlying ML error.
    Ml(MlError),
    /// Underlying synthesizer error.
    Synth(SynthError),
    /// A finding's statistic was undefined on this dataset (e.g. an empty
    /// group after synthesis). The benchmark treats this as "finding not
    /// reproduced", not as a crash.
    UndefinedStatistic { finding: u32, reason: String },
    /// Configuration problem.
    Config(String),
}

impl fmt::Display for SynrdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynrdError::Data(e) => write!(f, "data error: {e}"),
            SynrdError::Stats(e) => write!(f, "stats error: {e}"),
            SynrdError::Ml(e) => write!(f, "ml error: {e}"),
            SynrdError::Synth(e) => write!(f, "synth error: {e}"),
            SynrdError::UndefinedStatistic { finding, reason } => {
                write!(f, "finding #{finding}: statistic undefined ({reason})")
            }
            SynrdError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for SynrdError {}

impl From<DataError> for SynrdError {
    fn from(e: DataError) -> Self {
        SynrdError::Data(e)
    }
}

impl From<StatsError> for SynrdError {
    fn from(e: StatsError) -> Self {
        SynrdError::Stats(e)
    }
}

impl From<MlError> for SynrdError {
    fn from(e: MlError) -> Self {
        SynrdError::Ml(e)
    }
}

impl From<SynthError> for SynrdError {
    fn from(e: SynthError) -> Self {
        SynrdError::Synth(e)
    }
}

/// Convenience alias used throughout the core crate.
pub type Result<T> = std::result::Result<T, SynrdError>;
