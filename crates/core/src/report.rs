//! Text rendering of the paper's tables and figures: the Figure 3 parity
//! heatmap (with the "real, bootstrap" control row and crosshatch cells),
//! the Figure 4 series, Table 1 and Table 2.

use crate::benchmark::{CellStatus, PaperReport};
use crate::finding::FindingType;
use crate::parity::AggregateSeries;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use synrd_data::MetaFeatures;

/// Map a parity in [0,1] to a shade character (dark = low parity, matching
/// the paper's colormap direction).
fn shade(parity: f64) -> char {
    if !parity.is_finite() {
        return '?';
    }
    const RAMP: [char; 10] = ['@', '%', '#', '*', '+', '=', '-', ':', '.', ' '];
    let idx = (parity.clamp(0.0, 1.0) * (RAMP.len() - 1) as f64).round() as usize;
    RAMP[idx]
}

/// Render one paper's Figure 3 block: rows = synthesizer × ε, columns =
/// findings; `/` marks crosshatched (infeasible/timed-out) cells, `s`
/// skipped ones. The last row is the bootstrap control.
pub fn render_fig3_block(report: &PaperReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== {} (n = {}) — findings #{}..#{} ===",
        report.paper_name,
        report.n_rows,
        report.findings.first().map(|f| f.0).unwrap_or(0),
        report.findings.last().map(|f| f.0).unwrap_or(0),
    );
    let _ = writeln!(
        out,
        "legend: ' '=parity 1.0 … '@'=parity 0.0, '/'=could not fit, 's'=skipped"
    );
    for (s_idx, kind) in report.synthesizers.iter().enumerate() {
        for (e_idx, eps) in report.epsilons.iter().enumerate() {
            let cell = &report.cells[s_idx][e_idx];
            let row: String = match &cell.status {
                CellStatus::Ok => cell.parity.iter().map(|&p| shade(p)).collect(),
                CellStatus::Infeasible(_) | CellStatus::TimedOut => {
                    "/".repeat(report.findings.len())
                }
                CellStatus::Skipped => "s".repeat(report.findings.len()),
            };
            let _ = writeln!(
                out,
                "{:>10} eps={:<8.3} |{}| mean={:.3}",
                kind.name(),
                eps,
                row,
                cell.mean_parity()
            );
        }
    }
    let control_row: String = report.control.iter().map(|&p| shade(p)).collect();
    let control_mean = report.control.iter().sum::<f64>() / report.control.len().max(1) as f64;
    let _ = writeln!(
        out,
        "{:>10} {:<12} |{}| mean={:.3}",
        "real", "bootstrap", control_row, control_mean
    );
    out
}

/// Render the Figure 4 series as two aligned text tables.
pub fn render_fig4(agg: &AggregateSeries) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Figure 4 (left): mean epistemic parity vs epsilon ==="
    );
    let _ = write!(out, "{:>10} |", "synth");
    for eps in &agg.epsilons {
        let _ = write!(out, " {:>8.3}", eps);
    }
    let _ = writeln!(out);
    for (kind, series) in &agg.parity {
        let _ = write!(out, "{:>10} |", kind.name());
        for v in series {
            let _ = write!(out, " {:>8.3}", v);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "=== Figure 4 (right): mean parity variance vs epsilon ==="
    );
    for (kind, series) in &agg.variance {
        let _ = write!(out, "{:>10} |", kind.name());
        for v in series {
            let _ = write!(out, " {:>8.4}", v);
        }
        let _ = writeln!(out);
    }
    out
}

/// Render Table 1 from computed meta-features.
pub fn render_table1(rows: &[(&str, MetaFeatures)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>9} {:>5} {:>10} {:>8} {:>15} {:>15} {:>15}",
        "Paper", "Sample", "Vars", "Domain", "Outliers", "MutualInfo", "Skewness", "Sparsity"
    );
    for (name, mf) in rows {
        let fmt_ms = |m: synrd_data::MeanStd| {
            if m.mean.is_nan() {
                "NaN".to_string()
            } else {
                format!("{:.3} ± {:.3}", m.mean, m.std)
            }
        };
        let _ = writeln!(
            out,
            "{:<28} {:>9} {:>5} {:>10.2e} {:>8} {:>15} {:>15} {:>15}",
            name,
            mf.sample_size,
            mf.n_variables,
            mf.domain_size,
            mf.outliers,
            fmt_ms(mf.mutual_information),
            fmt_ms(mf.skewness),
            fmt_ms(mf.sparsity),
        );
    }
    out
}

/// Render Table 2: finding counts per type across all publications.
pub fn render_table2(counts: &BTreeMap<&'static str, usize>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<45} {:>5}", "Method (finding type)", "Count");
    let mut total = 0usize;
    for (label, count) in counts {
        let _ = writeln!(out, "{label:<45} {count:>5}");
        total += count;
    }
    let _ = writeln!(out, "{:<45} {:>5}", "Total", total);
    out
}

/// Count findings per type across publications (Table 2's content).
pub fn finding_type_counts() -> BTreeMap<&'static str, usize> {
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for t in FindingType::ALL {
        counts.insert(t.label(), 0);
    }
    for paper in crate::publication::all_publications() {
        for finding in paper.findings() {
            *counts.entry(finding.kind.label()).or_insert(0) += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shade_is_monotone() {
        assert_eq!(shade(1.0), ' ');
        assert_eq!(shade(0.0), '@');
        assert_eq!(shade(f64::NAN), '?');
    }

    #[test]
    fn table2_counts_104_findings() {
        let counts = finding_type_counts();
        let total: usize = counts.values().sum();
        assert_eq!(total, 104);
        assert!(counts["Mean Difference / Between-Class"] >= 15);
        assert_eq!(counts["Correlation / Spearman"], 1);
        assert_eq!(counts["Causal Paths / Interaction"], 1);
        assert_eq!(counts["Causal Paths / Variability"], 1);
    }
}
