//! Junction-tree construction: min-fill triangulation of the measurement
//! graph, maximal-clique extraction, and a maximum spanning tree over
//! separator sizes (which, for a triangulated graph, satisfies the running
//! intersection property).

use crate::error::{PgmError, Result};
use crate::spanning_tree::maximum_spanning_tree;

/// A junction tree (possibly a forest) over a discrete domain.
#[derive(Debug, Clone)]
pub struct JunctionTree {
    domain_shape: Vec<usize>,
    cliques: Vec<Vec<usize>>,
    clique_shapes: Vec<Vec<usize>>,
    /// Edges `(i, j, separator)` with `i < j`; separators sorted.
    edges: Vec<(usize, usize, Vec<usize>)>,
    /// adjacency[i] = list of (neighbor clique, edge index).
    adjacency: Vec<Vec<(usize, usize)>>,
}

impl JunctionTree {
    /// Build a junction tree whose cliques cover every attribute set in
    /// `attr_sets` (each set must therefore fit in one clique). Attributes
    /// not mentioned become singleton cliques so the model always spans the
    /// whole domain.
    ///
    /// # Errors
    /// [`PgmError::CliqueTooLarge`] if triangulation produces a clique over
    /// `cell_limit` cells; index errors for bad attribute ids.
    pub fn build(
        domain_shape: &[usize],
        attr_sets: &[Vec<usize>],
        cell_limit: usize,
    ) -> Result<JunctionTree> {
        let n = domain_shape.len();
        for set in attr_sets {
            for &a in set {
                if a >= n {
                    return Err(PgmError::AttributeOutOfBounds { index: a, len: n });
                }
            }
        }
        // Moral-style graph: complete every measurement set.
        let mut adj = vec![vec![false; n]; n];
        for set in attr_sets {
            for (k, &a) in set.iter().enumerate() {
                for &b in &set[k + 1..] {
                    if a != b {
                        adj[a][b] = true;
                        adj[b][a] = true;
                    }
                }
            }
        }

        // Min-fill elimination.
        let mut eliminated = vec![false; n];
        let mut elim_cliques: Vec<Vec<usize>> = Vec::with_capacity(n);
        for _ in 0..n {
            // Pick the non-eliminated vertex adding the fewest fill edges.
            let mut best = usize::MAX;
            let mut best_fill = usize::MAX;
            for v in 0..n {
                if eliminated[v] {
                    continue;
                }
                let nbrs: Vec<usize> = (0..n).filter(|&u| !eliminated[u] && adj[v][u]).collect();
                let mut fill = 0usize;
                for (k, &a) in nbrs.iter().enumerate() {
                    for &b in &nbrs[k + 1..] {
                        if !adj[a][b] {
                            fill += 1;
                        }
                    }
                }
                if fill < best_fill {
                    best_fill = fill;
                    best = v;
                    if fill == 0 {
                        break; // simplicial vertex: optimal locally
                    }
                }
            }
            let v = best;
            let nbrs: Vec<usize> = (0..n).filter(|&u| !eliminated[u] && adj[v][u]).collect();
            // Fill in.
            for (k, &a) in nbrs.iter().enumerate() {
                for &b in &nbrs[k + 1..] {
                    adj[a][b] = true;
                    adj[b][a] = true;
                }
            }
            let mut clique = nbrs;
            clique.push(v);
            clique.sort_unstable();
            elim_cliques.push(clique);
            eliminated[v] = true;
        }

        // Keep only maximal cliques (in elimination order, a clique is
        // redundant if contained in an earlier-collected one).
        let mut cliques: Vec<Vec<usize>> = Vec::new();
        for cand in elim_cliques {
            if !cliques.iter().any(|c| is_subset(&cand, c)) {
                cliques.retain(|c| !is_subset(c, &cand));
                cliques.push(cand);
            }
        }
        cliques.sort();

        // Cell-limit check.
        let mut clique_shapes = Vec::with_capacity(cliques.len());
        for clique in &cliques {
            let mut cells: u128 = 1;
            for &a in clique {
                cells = cells.saturating_mul(domain_shape[a] as u128);
            }
            if cells > cell_limit as u128 {
                return Err(PgmError::CliqueTooLarge {
                    cells,
                    limit: cell_limit,
                });
            }
            clique_shapes.push(clique.iter().map(|&a| domain_shape[a]).collect());
        }

        // Junction tree: max spanning tree on separator size.
        let mut weighted = Vec::new();
        for i in 0..cliques.len() {
            for j in (i + 1)..cliques.len() {
                let sep = intersect(&cliques[i], &cliques[j]);
                if !sep.is_empty() {
                    weighted.push((i, j, sep.len() as f64));
                }
            }
        }
        let tree_edges = maximum_spanning_tree(cliques.len(), &weighted);
        let mut edges = Vec::with_capacity(tree_edges.len());
        let mut adjacency = vec![Vec::new(); cliques.len()];
        for (u, v) in tree_edges {
            let (i, j) = if u < v { (u, v) } else { (v, u) };
            let sep = intersect(&cliques[i], &cliques[j]);
            let e = edges.len();
            edges.push((i, j, sep));
            adjacency[i].push((j, e));
            adjacency[j].push((i, e));
        }

        Ok(JunctionTree {
            domain_shape: domain_shape.to_vec(),
            cliques,
            clique_shapes,
            edges,
            adjacency,
        })
    }

    /// Cardinalities of the full domain.
    pub fn domain_shape(&self) -> &[usize] {
        &self.domain_shape
    }

    /// All cliques (sorted attribute ids).
    pub fn cliques(&self) -> &[Vec<usize>] {
        &self.cliques
    }

    /// Shape of clique `i`.
    pub fn clique_shape(&self, i: usize) -> &[usize] {
        &self.clique_shapes[i]
    }

    /// Tree edges `(i, j, separator)`.
    pub fn edges(&self) -> &[(usize, usize, Vec<usize>)] {
        &self.edges
    }

    /// Neighbors of clique `i` as `(clique, edge index)`.
    pub fn neighbors(&self, i: usize) -> &[(usize, usize)] {
        &self.adjacency[i]
    }

    /// Index of the smallest clique containing `attrs` (sorted), if any.
    pub fn containing_clique(&self, attrs: &[usize]) -> Option<usize> {
        self.cliques
            .iter()
            .enumerate()
            .filter(|(_, c)| is_subset(attrs, c))
            .min_by_key(|(_, c)| c.len())
            .map(|(i, _)| i)
    }

    /// Largest clique cell count (the tree's computational width).
    pub fn max_clique_cells(&self) -> usize {
        self.clique_shapes
            .iter()
            .map(|s| s.iter().product::<usize>())
            .max()
            .unwrap_or(0)
    }

    /// Total parameter count (sum of clique cells).
    pub fn total_cells(&self) -> usize {
        self.clique_shapes
            .iter()
            .map(|s| s.iter().product::<usize>())
            .sum()
    }
}

/// Is sorted `a` a subset of sorted `b`?
pub(crate) fn is_subset(a: &[usize], b: &[usize]) -> bool {
    let mut j = 0usize;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

/// Intersection of two sorted sets.
pub(crate) fn intersect(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_measurements_give_pair_cliques() {
        // Pairs (0,1), (1,2), (2,3): already triangulated; cliques = pairs.
        let shape = vec![2, 3, 4, 5];
        let sets = vec![vec![0, 1], vec![1, 2], vec![2, 3]];
        let jt = JunctionTree::build(&shape, &sets, 1 << 20).unwrap();
        assert_eq!(jt.cliques().len(), 3);
        assert_eq!(jt.edges().len(), 2);
        assert!(jt.containing_clique(&[1, 2]).is_some());
        assert!(jt.containing_clique(&[0, 3]).is_none());
    }

    #[test]
    fn cycle_gets_triangulated() {
        // 4-cycle (0,1),(1,2),(2,3),(0,3) requires a chord; cliques of size 3.
        let shape = vec![2; 4];
        let sets = vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]];
        let jt = JunctionTree::build(&shape, &sets, 1 << 20).unwrap();
        assert!(jt.cliques().iter().all(|c| c.len() <= 3));
        assert!(jt.cliques().iter().any(|c| c.len() == 3));
        // Every measurement still lives in a clique.
        for s in &sets {
            assert!(jt.containing_clique(s).is_some(), "{s:?}");
        }
    }

    #[test]
    fn isolated_attributes_become_singletons() {
        let shape = vec![2, 3, 4];
        let sets = vec![vec![0, 1]];
        let jt = JunctionTree::build(&shape, &sets, 1 << 20).unwrap();
        assert!(jt.containing_clique(&[2]).is_some());
    }

    #[test]
    fn running_intersection_property_holds() {
        // For every attribute, the cliques containing it must form a
        // connected subtree.
        let shape = vec![2; 6];
        let sets = vec![
            vec![0, 1],
            vec![1, 2],
            vec![2, 3],
            vec![0, 3],
            vec![3, 4],
            vec![4, 5],
            vec![0, 5],
        ];
        let jt = JunctionTree::build(&shape, &sets, 1 << 20).unwrap();
        for attr in 0..6 {
            let members: Vec<usize> = (0..jt.cliques().len())
                .filter(|&i| jt.cliques()[i].contains(&attr))
                .collect();
            if members.len() <= 1 {
                continue;
            }
            // BFS within the induced subgraph.
            let mut seen = vec![false; jt.cliques().len()];
            let mut queue = vec![members[0]];
            seen[members[0]] = true;
            while let Some(c) = queue.pop() {
                for &(nbr, e) in jt.neighbors(c) {
                    let (_, _, sep) = &jt.edges()[e];
                    if !seen[nbr] && sep.contains(&attr) && jt.cliques()[nbr].contains(&attr) {
                        seen[nbr] = true;
                        queue.push(nbr);
                    }
                }
            }
            for &m in &members {
                assert!(seen[m], "attr {attr} cliques disconnected");
            }
        }
    }

    #[test]
    fn cell_limit_enforced() {
        let shape = vec![100, 100, 100];
        let sets = vec![vec![0, 1, 2]];
        assert!(matches!(
            JunctionTree::build(&shape, &sets, 1000),
            Err(PgmError::CliqueTooLarge { .. })
        ));
    }

    #[test]
    fn set_helpers() {
        assert!(is_subset(&[1, 3], &[0, 1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[0, 1, 2, 3]));
        assert_eq!(intersect(&[0, 1, 2], &[1, 2, 5]), vec![1, 2]);
    }
}
