//! # synrd-pgm — discrete graphical-model substrate (Private-PGM work-alike)
//!
//! MST, AIM and PrivMRF all parameterize a synthetic distribution through a
//! graphical model estimated from noisy marginals (McKenna et al.'s
//! Private-PGM). This crate provides that machinery from scratch:
//!
//! * [`factor`] — log-space factors with stride-kernel product /
//!   marginalization / division (no union scope is ever materialized on the
//!   hot path);
//! * [`junction_tree`] — min-fill triangulation + maximal cliques + maximum
//!   spanning tree with the running-intersection property;
//! * [`inference`] — Shafer–Shenoy calibration, allocation-free after
//!   warm-up via [`workspace::CalibrationWorkspace`];
//! * [`estimation`] — mirror-descent fitting of clique potentials to noisy
//!   marginal measurements, with backtracking line search;
//! * [`sampling`] — batched, clique-major, rayon-parallel ancestral
//!   sampling from the calibrated tree (bit-identical to the retained
//!   per-row oracle);
//! * [`spanning_tree`] — Kruskal maximum spanning tree / union-find (also
//!   used directly by the MST synthesizer);
//! * [`workspace`] — the reusable scratch arena threaded through
//!   `calibrate` → `estimate` → `TreeSampler`.
//!
//! The original allocate-per-operation factor algebra is retained behind
//! `#[cfg(any(test, feature = "naive-reference"))]`
//! ([`Factor::naive_multiply`], [`Factor::naive_divide`],
//! [`Factor::naive_marginalize_keep`], [`Factor::expand`],
//! [`inference::calibrate_naive`]) as the differential-testing oracle: the
//! stride kernels are proven **bit-identical** to it by the proptests in
//! `tests/factor_equivalence.rs` and `tests/calibration_determinism.rs`.

#![allow(clippy::needless_range_loop)] // indexed loops are the clearer idiom in numeric kernels
pub mod error;
pub mod estimation;
pub mod factor;
pub mod inference;
pub mod junction_tree;
pub mod sampling;
pub mod spanning_tree;
pub mod workspace;

pub use error::{PgmError, Result};
#[cfg(any(test, feature = "naive-reference"))]
pub use estimation::estimate_naive;
pub use estimation::{estimate, estimate_with, EstimationOptions, FittedModel, NoisyMeasurement};
pub use factor::{factor_buffer_allocs, log_sum_exp, Factor};
#[cfg(any(test, feature = "naive-reference"))]
pub use inference::calibrate_naive;
pub use inference::{calibrate, calibrate_into, CalibratedTree};
pub use junction_tree::JunctionTree;
pub use sampling::{
    assemble_chunks, parallel_rows, record_sampling_pass, rows_sampled, samplers_built,
    sampling_passes, search_cumulative, SamplingWorkspace, TreeSampler,
};
pub use spanning_tree::{maximum_spanning_tree, UnionFind};
pub use workspace::CalibrationWorkspace;
