//! # synrd-pgm — discrete graphical-model substrate (Private-PGM work-alike)
//!
//! MST, AIM and PrivMRF all parameterize a synthetic distribution through a
//! graphical model estimated from noisy marginals (McKenna et al.'s
//! Private-PGM). This crate provides that machinery from scratch:
//!
//! * [`factor`] — log-space factors with product / marginalization / division;
//! * [`junction_tree`] — min-fill triangulation + maximal cliques + maximum
//!   spanning tree with the running-intersection property;
//! * [`inference`] — Shafer–Shenoy calibration;
//! * [`estimation`] — mirror-descent fitting of clique potentials to noisy
//!   marginal measurements, with backtracking line search;
//! * [`sampling`] — ancestral sampling from the calibrated tree;
//! * [`spanning_tree`] — Kruskal maximum spanning tree / union-find (also
//!   used directly by the MST synthesizer).

#![allow(clippy::needless_range_loop)] // indexed loops are the clearer idiom in numeric kernels
pub mod error;
pub mod estimation;
pub mod factor;
pub mod inference;
pub mod junction_tree;
pub mod sampling;
pub mod spanning_tree;

pub use error::{PgmError, Result};
pub use estimation::{estimate, EstimationOptions, FittedModel, NoisyMeasurement};
pub use factor::{log_sum_exp, Factor};
pub use inference::{calibrate, CalibratedTree};
pub use junction_tree::JunctionTree;
pub use sampling::TreeSampler;
pub use spanning_tree::{maximum_spanning_tree, UnionFind};
