//! Kruskal maximum spanning tree with union-find — used both by the MST
//! synthesizer (tree over attributes weighted by mutual information) and by
//! junction-tree construction (tree over cliques weighted by separator size).

/// Union-find with union by rank and path halving.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Disjoint singletons 0..n.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Representative of x's set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]]; // path halving
            x = self.parent[x];
        }
        x
    }

    /// Merge the sets of a and b; returns false if already joined.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }
}

/// Maximum spanning forest over `n_nodes` vertices given weighted edges
/// `(u, v, weight)`. Returns the chosen edges as index pairs, in descending
/// weight order. Handles disconnected graphs (returns a forest).
pub fn maximum_spanning_tree(n_nodes: usize, edges: &[(usize, usize, f64)]) -> Vec<(usize, usize)> {
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_by(|&a, &b| {
        edges[b]
            .2
            .partial_cmp(&edges[a].2)
            .expect("finite edge weights")
    });
    let mut uf = UnionFind::new(n_nodes);
    let mut out = Vec::with_capacity(n_nodes.saturating_sub(1));
    for idx in order {
        let (u, v, _) = edges[idx];
        if uf.union(u, v) {
            out.push((u, v));
            if out.len() + 1 == n_nodes {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_heaviest_tree() {
        // Triangle: keep the two heaviest edges.
        let edges = [(0, 1, 3.0), (1, 2, 2.0), (0, 2, 1.0)];
        let tree = maximum_spanning_tree(3, &edges);
        assert_eq!(tree.len(), 2);
        assert!(tree.contains(&(0, 1)));
        assert!(tree.contains(&(1, 2)));
    }

    #[test]
    fn handles_forest() {
        // Two disconnected pairs.
        let edges = [(0, 1, 1.0), (2, 3, 1.0)];
        let tree = maximum_spanning_tree(4, &edges);
        assert_eq!(tree.len(), 2);
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(2));
    }
}
