//! Mirror-descent estimation of a graphical model from noisy marginal
//! measurements — the Private-PGM work-alike at the heart of MST, AIM and
//! PrivMRF.
//!
//! Given noisy counts `y_S ≈ n·μ_S(θ) + N(0, σ_S²)` over attribute sets S,
//! we fit clique log-potentials θ to minimize the weighted squared loss
//! `L(θ) = Σ_S ‖μ_S(θ) − y_S/n̂‖² / (2·(σ_S/n̂)²)`, using the mirror-descent
//! update of McKenna et al.: the loss gradient in marginal space is lifted
//! onto the containing clique's potential, with a backtracking step size.
//!
//! The descent loop is allocation-free after warm-up: potentials, the
//! backtracking proposal, gradients, per-measurement marginal/probability
//! buffers and both calibrated-tree buffers are set up once, stride plans
//! map measurement scopes onto their cliques, and every iteration reuses
//! them through [`calibrate_into`]. All arithmetic is performed in the same
//! per-cell order as the original allocate-per-operation implementation, so
//! fitted models are bit-identical to the pre-workspace code (pinned by the
//! report-digest integration test).

use crate::error::{PgmError, Result};
use crate::factor::{
    bcast_add, bcast_assign, marg_finish, marg_max, marg_sum, probabilities_into_slice, Factor,
    StridePlan,
};
use crate::inference::{calibrate_into, CalibratedTree};
use crate::junction_tree::JunctionTree;
use crate::sampling::TreeSampler;
use crate::workspace::CalibrationWorkspace;
use rayon::prelude::*;
use std::sync::OnceLock;

/// One noisy marginal measurement.
#[derive(Debug, Clone)]
pub struct NoisyMeasurement {
    /// Sorted attribute ids.
    pub attrs: Vec<usize>,
    /// Noisy cell counts (may be negative after noising).
    pub values: Vec<f64>,
    /// Standard deviation of the additive noise (in count units).
    pub sigma: f64,
}

/// Options for [`estimate`].
#[derive(Debug, Clone, Copy)]
pub struct EstimationOptions {
    /// Mirror-descent iterations.
    pub iterations: usize,
    /// Initial step size (auto-tuned by backtracking thereafter).
    pub initial_step: f64,
    /// Maximum cells per junction-tree clique.
    pub cell_limit: usize,
    /// Worker threads for the intra-fit parallel phases of the loss pass
    /// (target marginalization and the per-clique gradient lift). Every
    /// reduction order is pinned, so fitted models are **bit-identical at
    /// any thread count**; `1` (the default) runs fully sequential.
    pub fit_threads: usize,
}

impl Default for EstimationOptions {
    fn default() -> Self {
        EstimationOptions {
            iterations: 120,
            initial_step: 1.0,
            cell_limit: 1 << 21,
            fit_threads: 1,
        }
    }
}

/// A fitted graphical model: junction tree + calibrated beliefs + the
/// estimated record count, plus the lazily built (and then cached) row
/// sampler.
#[derive(Debug)]
pub struct FittedModel {
    tree: JunctionTree,
    calibrated: CalibratedTree,
    n_estimate: f64,
    final_loss: f64,
    /// Flattened cumulative/guide/emit sampling tables, built on the first
    /// `sampler()` call and reused across every bootstrap draw thereafter.
    /// A pure function of `(tree, calibrated)`, so it is never serialized
    /// and a clone restarts empty.
    sampler: OnceLock<TreeSampler>,
}

impl Clone for FittedModel {
    fn clone(&self) -> FittedModel {
        FittedModel {
            tree: self.tree.clone(),
            calibrated: self.calibrated.clone(),
            n_estimate: self.n_estimate,
            final_loss: self.final_loss,
            // Carry an already built sampler over (cheap relative to
            // rebuilding); an unbuilt one stays unbuilt.
            sampler: match self.sampler.get() {
                Some(s) => OnceLock::from(s.clone()),
                None => OnceLock::new(),
            },
        }
    }
}

impl FittedModel {
    /// Assemble a model from restored parts (the fit-cache deserialization
    /// path). The calibrated beliefs must line up with the tree's cliques
    /// one-to-one — a truncated or reordered belief list would otherwise
    /// sample from the wrong tables.
    ///
    /// # Errors
    /// [`PgmError::ShapeMismatch`] when the belief list does not match the
    /// tree's cliques (count, scope, or shape).
    pub fn from_parts(
        tree: JunctionTree,
        calibrated: CalibratedTree,
        n_estimate: f64,
        final_loss: f64,
    ) -> Result<FittedModel> {
        if calibrated.beliefs.len() != tree.cliques().len() {
            return Err(PgmError::ShapeMismatch {
                cells: tree.cliques().len(),
                values: calibrated.beliefs.len(),
            });
        }
        for (c, belief) in calibrated.beliefs.iter().enumerate() {
            if belief.attrs() != tree.cliques()[c].as_slice()
                || belief.shape() != tree.clique_shape(c)
            {
                return Err(PgmError::ShapeMismatch {
                    cells: tree.clique_shape(c).iter().product(),
                    values: belief.log_values().len(),
                });
            }
        }
        Ok(FittedModel {
            tree,
            calibrated,
            n_estimate,
            final_loss,
            sampler: OnceLock::new(),
        })
    }

    /// The cached row sampler, built on first use. Construction is a
    /// deterministic function of the fitted model, so the cached sampler
    /// produces bit-identical draws to a freshly built one — pinned by the
    /// `sampler_cache` tests in `synrd-synth`.
    ///
    /// # Errors
    /// Sampler construction errors (inconsistent beliefs) on the first call.
    pub fn sampler(&self) -> Result<&TreeSampler> {
        if let Some(s) = self.sampler.get() {
            return Ok(s);
        }
        let built = TreeSampler::new(self)?;
        // A racing builder may have won; `get_or_init` keeps exactly one.
        Ok(self.sampler.get_or_init(|| built))
    }

    /// The junction tree structure.
    pub fn tree(&self) -> &JunctionTree {
        &self.tree
    }

    /// Calibrated beliefs.
    pub fn calibrated(&self) -> &CalibratedTree {
        &self.calibrated
    }

    /// Estimated number of records.
    pub fn n_estimate(&self) -> f64 {
        self.n_estimate
    }

    /// Final measurement loss (diagnostic).
    pub fn final_loss(&self) -> f64 {
        self.final_loss
    }

    /// Model marginal probabilities over `attrs` if covered by a clique;
    /// falls back to a product of single-attribute marginals otherwise
    /// (the independence approximation, used by AIM's candidate scoring for
    /// not-yet-measured pairs).
    pub fn marginal_or_independent(&self, attrs: &[usize]) -> Result<Vec<f64>> {
        match self.calibrated.marginal(&self.tree, attrs) {
            Ok(m) => Ok(m),
            Err(PgmError::UncoveredMeasurement { .. }) => {
                let mut out = vec![1.0f64];
                for &a in attrs {
                    let single = self.calibrated.marginal(&self.tree, &[a])?;
                    let mut next = Vec::with_capacity(out.len() * single.len());
                    for &p in &out {
                        for &q in &single {
                            next.push(p * q);
                        }
                    }
                    out = next;
                }
                Ok(out)
            }
            Err(e) => Err(e),
        }
    }
}

/// A measurement resolved against the junction tree, with its reusable
/// buffers: noisy target proportions, the stride plan between the
/// measurement scope and its containing clique, and scratch for the model
/// marginal / probabilities / marginal-space gradient.
struct Target {
    clique: usize,
    proportions: Vec<f64>,
    weight: f64, // 1 / (2 sigma_prop^2)
    /// Stride plan embedding the measurement scope in the clique scope
    /// (marginalize down for the loss, broadcast up for the gradient).
    plan: StridePlan,
    /// Model log-marginal over the measurement scope.
    marg: Vec<f64>,
    /// Model probabilities over the measurement scope.
    probs: Vec<f64>,
    /// Marginal-space gradient `2·w·(μ − y/n̂)`.
    grad: Vec<f64>,
}

/// Marginalize one target's belief onto its measurement scope and refresh
/// its probabilities, using the target's own disjoint `(maxes, sums)`
/// scratch pair. The per-cell operation sequence is exactly the historical
/// shared-scratch loop — only the buffer identity differs — so sequential
/// and parallel schedules produce bit-identical `marg`/`probs`.
fn marginalize_target(cal: &CalibratedTree, t: &mut Target, mx: &mut [f64], sm: &mut [f64]) {
    let belief = &cal.beliefs[t.clique];
    if t.plan.is_identity() {
        // Measurement scope == clique scope: the marginal is the belief.
        t.marg.copy_from_slice(belief.log_values());
    } else {
        mx.fill(f64::NEG_INFINITY);
        sm.fill(0.0);
        marg_max(belief.log_values(), mx, &t.plan);
        marg_sum(belief.log_values(), mx, sm, &t.plan);
        marg_finish(mx, sm, &mut t.marg);
    }
    probabilities_into_slice(&t.marg, &mut t.probs);
}

/// Lift one clique's marginal-space gradients onto its potential buffer,
/// applying the clique's targets in ascending target index — the order the
/// historical single-pass loop produced (assign first, add the rest).
fn lift_clique_grad(grad: &mut Factor, idxs: &[usize], targets: &[Target]) {
    let g = grad.log_values_mut();
    for (pos, &ti) in idxs.iter().enumerate() {
        let t = &targets[ti];
        if pos == 0 {
            bcast_assign(g, &t.grad, &t.plan);
        } else {
            bcast_add(g, &t.grad, &t.plan);
        }
    }
}

/// Measurement loss, and optionally the per-clique potential-space
/// gradients (written into `grads`, with `grad_set[c]` marking cliques that
/// received any contribution).
///
/// Three phases, so the middle one can pin the reduction order while the
/// outer two parallelize over independent buffers:
///
/// 1. marginalize every target (parallel over targets — each owns `marg`,
///    `probs` and a disjoint slice of `scratch`);
/// 2. accumulate the scalar loss and the marginal-space gradients
///    sequentially in target order (the single floating-point chain that
///    fixes bit-identity at every thread count);
/// 3. lift gradients per clique (parallel over cliques — each owns its
///    potential buffer; within a clique, targets apply in ascending index).
///
/// The sequential schedule (`threads <= 1`) runs the same three phases in
/// the same per-cell order, allocation-free.
#[allow(clippy::too_many_arguments)]
fn loss_and_grad(
    cal: &CalibratedTree,
    targets: &mut [Target],
    want_grad: bool,
    grads: &mut [Factor],
    grad_set: &mut [bool],
    clique_targets: &[Vec<usize>],
    scratch: &mut [f64],
    threads: usize,
) -> f64 {
    let parallel = threads > 1 && targets.len() > 1;

    // Phase 1: per-target marginalization into disjoint buffers.
    if parallel {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("fit thread pool");
        // Contiguous target chunks paired with their slice of the scratch
        // arena (targets and arena share one ordering, so a chunk's scratch
        // is one contiguous split).
        let chunk = targets.len().div_ceil(threads);
        let mut jobs: Vec<(&mut [Target], &mut [f64])> = Vec::with_capacity(threads);
        let mut rest_t: &mut [Target] = targets;
        let mut rest_s: &mut [f64] = scratch;
        while !rest_t.is_empty() {
            let take = chunk.min(rest_t.len());
            let (tc, tr) = rest_t.split_at_mut(take);
            let need: usize = tc.iter().map(|t| 2 * t.marg.len()).sum();
            let (sc, sr) = rest_s.split_at_mut(need);
            rest_t = tr;
            rest_s = sr;
            jobs.push((tc, sc));
        }
        pool.install(|| {
            jobs.into_par_iter().for_each(|(tc, sc)| {
                let mut rest = sc;
                for t in tc.iter_mut() {
                    let cells = t.marg.len();
                    let (mx, r) = rest.split_at_mut(cells);
                    let (sm, r) = r.split_at_mut(cells);
                    rest = r;
                    marginalize_target(cal, t, mx, sm);
                }
            });
        });
    } else {
        let mut rest = &mut scratch[..];
        for t in targets.iter_mut() {
            let cells = t.marg.len();
            let (mx, r) = rest.split_at_mut(cells);
            let (sm, r) = r.split_at_mut(cells);
            rest = r;
            marginalize_target(cal, t, mx, sm);
        }
    }

    // Phase 2: one sequential loss chain in target order (and the cheap
    // marginal-space gradient fill, which reuses the same `diff`).
    let mut loss = 0.0;
    for t in targets.iter_mut() {
        for (k, (p, y)) in t.probs.iter().zip(&t.proportions).enumerate() {
            let diff = p - y;
            loss += t.weight * diff * diff;
            if want_grad {
                t.grad[k] = 2.0 * t.weight * diff;
            }
        }
    }

    // Phase 3: per-clique gradient lift over disjoint potential buffers.
    if want_grad {
        for (set, idxs) in grad_set.iter_mut().zip(clique_targets) {
            *set = !idxs.is_empty();
        }
        let targets_ref: &[Target] = targets;
        let touched = clique_targets.iter().filter(|i| !i.is_empty()).count();
        if parallel && touched > 1 {
            let jobs: Vec<(&Vec<usize>, &mut Factor)> = clique_targets
                .iter()
                .zip(grads.iter_mut())
                .filter(|(idxs, _)| !idxs.is_empty())
                .collect();
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("fit thread pool");
            pool.install(|| {
                jobs.into_par_iter()
                    .for_each(|(idxs, grad)| lift_clique_grad(grad, idxs, targets_ref));
            });
        } else {
            for (idxs, grad) in clique_targets.iter().zip(grads.iter_mut()) {
                if !idxs.is_empty() {
                    lift_clique_grad(grad, idxs, targets_ref);
                }
            }
        }
    }
    loss
}

/// Estimate a model from noisy measurements over `domain_shape`.
///
/// One-shot convenience over [`estimate_with`] (allocates a fresh
/// workspace).
///
/// # Errors
/// [`PgmError::NoMeasurements`] without input; construction errors from the
/// junction tree (e.g. a measurement forcing an oversized clique).
pub fn estimate(
    domain_shape: &[usize],
    measurements: &[NoisyMeasurement],
    options: EstimationOptions,
) -> Result<FittedModel> {
    let mut ws = CalibrationWorkspace::new();
    estimate_with(domain_shape, measurements, options, &mut ws)
}

/// [`estimate`] with a caller-provided scratch arena. The workspace is
/// rebuilt automatically if the implied junction tree differs from the one
/// it last served, so a synthesizer can hold one workspace across repeated
/// fits (AIM's measure-estimate rounds) and every mirror-descent iteration
/// runs without factor-buffer allocations.
///
/// # Errors
/// Same contract as [`estimate`].
pub fn estimate_with(
    domain_shape: &[usize],
    measurements: &[NoisyMeasurement],
    options: EstimationOptions,
    ws: &mut CalibrationWorkspace,
) -> Result<FittedModel> {
    if measurements.is_empty() {
        return Err(PgmError::NoMeasurements);
    }
    // n̂: inverse-variance weighted mean of the measurement totals.
    let mut num = 0.0;
    let mut den = 0.0;
    for m in measurements {
        let total: f64 = m.values.iter().sum();
        let w = 1.0 / m.sigma.max(1e-9).powi(2);
        num += w * total;
        den += w;
    }
    let n_estimate = (num / den).max(1.0);

    let sets: Vec<Vec<usize>> = measurements.iter().map(|m| m.attrs.clone()).collect();
    let tree = JunctionTree::build(domain_shape, &sets, options.cell_limit)?;

    // Assign measurements to containing cliques; precompute targets as
    // noisy *proportions* with proportion-space noise std, plus the stride
    // plan and scratch each target reuses every iteration.
    let mut targets = Vec::with_capacity(measurements.len());
    for m in measurements {
        let clique =
            tree.containing_clique(&m.attrs)
                .ok_or_else(|| PgmError::UncoveredMeasurement {
                    attrs: m.attrs.clone(),
                })?;
        let shape: Vec<usize> = m.attrs.iter().map(|&a| domain_shape[a]).collect();
        let plan = StridePlan::embed(
            &m.attrs,
            &shape,
            &tree.cliques()[clique],
            tree.clique_shape(clique),
        )?;
        let cells = plan.small_cells();
        // A truncated/oversized value vector would otherwise zip silently
        // against the model marginal and fit with unconstrained cells (the
        // original path errored when lifting the gradient).
        if m.values.len() != cells {
            return Err(PgmError::ShapeMismatch {
                cells,
                values: m.values.len(),
            });
        }
        let sigma_prop = (m.sigma / n_estimate).max(1e-9);
        targets.push(Target {
            clique,
            proportions: m.values.iter().map(|v| v / n_estimate).collect(),
            weight: 1.0 / (2.0 * sigma_prop * sigma_prop),
            plan,
            marg: vec![0.0; cells],
            probs: vec![0.0; cells],
            grad: vec![0.0; cells],
        });
    }

    // Clique → targets map for the gradient lift (ascending target index
    // within each clique, the order the loss pass pins).
    let mut clique_targets: Vec<Vec<usize>> = vec![Vec::new(); tree.cliques().len()];
    for (i, t) in targets.iter().enumerate() {
        clique_targets[t.clique].push(i);
    }

    // Initialize potentials to uniform; pre-size the proposal, gradient and
    // marginalization buffers (end of warm-up — the loop allocates nothing).
    let mut theta: Vec<Factor> = tree
        .cliques()
        .iter()
        .enumerate()
        .map(|(i, c)| Factor::uniform(c.clone(), tree.clique_shape(i).to_vec()))
        .collect::<Result<_>>()?;
    let mut proposal = theta.clone();
    let mut grads: Vec<Factor> = theta.clone();
    let mut grad_set = vec![false; theta.len()];
    let scratch_len: usize = targets.iter().map(|t| 2 * t.marg.len()).sum();
    ws.ensure_target_scratch(scratch_len);
    let threads = options.fit_threads.max(1);
    let mut cal = CalibratedTree::default();
    let mut trial = CalibratedTree::default();

    // Normalize gradient magnitude: weights scale like n̂²/σ², so scale the
    // step by the total weight to start in a sane region.
    let weight_scale: f64 = targets.iter().map(|t| t.weight).sum::<f64>().max(1.0);
    let mut step = options.initial_step / weight_scale;
    calibrate_into(&tree, &theta, ws, &mut cal)?;
    let mut loss = loss_and_grad(
        &cal,
        &mut targets,
        false,
        &mut grads,
        &mut grad_set,
        &clique_targets,
        &mut ws.target_scratch[..scratch_len],
        threads,
    );

    for _ in 0..options.iterations {
        loss_and_grad(
            &cal,
            &mut targets,
            true,
            &mut grads,
            &mut grad_set,
            &clique_targets,
            &mut ws.target_scratch[..scratch_len],
            threads,
        );
        // Backtracking: shrink the step until the loss decreases.
        let mut accepted = false;
        for _ in 0..24 {
            for (c, (pr, th)) in proposal.iter_mut().zip(&theta).enumerate() {
                pr.copy_values_from(th);
                if grad_set[c] {
                    for (tv, gv) in pr.log_values_mut().iter_mut().zip(grads[c].log_values()) {
                        *tv -= step * gv;
                    }
                }
            }
            calibrate_into(&tree, &proposal, ws, &mut trial)?;
            let new_loss = loss_and_grad(
                &trial,
                &mut targets,
                false,
                &mut grads,
                &mut grad_set,
                &clique_targets,
                &mut ws.target_scratch[..scratch_len],
                threads,
            );
            if new_loss <= loss {
                std::mem::swap(&mut theta, &mut proposal);
                std::mem::swap(&mut cal, &mut trial);
                loss = new_loss;
                step *= 1.25; // expand after success
                accepted = true;
                break;
            }
            step *= 0.5;
        }
        if !accepted {
            break; // converged to numerical precision
        }
    }

    Ok(FittedModel {
        tree,
        calibrated: cal,
        n_estimate,
        final_loss: loss,
        sampler: OnceLock::new(),
    })
}

// ---------------------------------------------------------------------------
// Naive reference estimation — the differential-testing oracle.
// ---------------------------------------------------------------------------

/// The original allocate-per-operation mirror descent, built on the naive
/// factor algebra and [`crate::inference::calibrate_naive`]. Retained
/// verbatim as the bit-identity oracle for [`estimate`]
/// (see `tests/calibration_determinism.rs`).
#[cfg(any(test, feature = "naive-reference"))]
pub fn estimate_naive(
    domain_shape: &[usize],
    measurements: &[NoisyMeasurement],
    options: EstimationOptions,
) -> Result<FittedModel> {
    use crate::inference::calibrate_naive;

    if measurements.is_empty() {
        return Err(PgmError::NoMeasurements);
    }
    // n̂: inverse-variance weighted mean of the measurement totals.
    let mut num = 0.0;
    let mut den = 0.0;
    for m in measurements {
        let total: f64 = m.values.iter().sum();
        let w = 1.0 / m.sigma.max(1e-9).powi(2);
        num += w * total;
        den += w;
    }
    let n_estimate = (num / den).max(1.0);

    let sets: Vec<Vec<usize>> = measurements.iter().map(|m| m.attrs.clone()).collect();
    let tree = JunctionTree::build(domain_shape, &sets, options.cell_limit)?;

    struct NaiveTarget {
        clique: usize,
        attrs: Vec<usize>,
        proportions: Vec<f64>,
        weight: f64,
    }
    let mut targets = Vec::with_capacity(measurements.len());
    for m in measurements {
        let clique =
            tree.containing_clique(&m.attrs)
                .ok_or_else(|| PgmError::UncoveredMeasurement {
                    attrs: m.attrs.clone(),
                })?;
        let sigma_prop = (m.sigma / n_estimate).max(1e-9);
        targets.push(NaiveTarget {
            clique,
            attrs: m.attrs.clone(),
            proportions: m.values.iter().map(|v| v / n_estimate).collect(),
            weight: 1.0 / (2.0 * sigma_prop * sigma_prop),
        });
    }

    let mut theta: Vec<Factor> = tree
        .cliques()
        .iter()
        .enumerate()
        .map(|(i, c)| Factor::uniform(c.clone(), tree.clique_shape(i).to_vec()))
        .collect::<Result<_>>()?;

    let loss_and_grad = |cal: &CalibratedTree,
                         want_grad: bool|
     -> Result<(f64, Vec<Option<Factor>>)> {
        let mut loss = 0.0;
        let mut grads: Vec<Option<Factor>> = vec![None; tree.cliques().len()];
        for t in &targets {
            let model = cal.beliefs[t.clique].naive_marginalize_keep(&t.attrs)?;
            let probs = model.probabilities();
            let mut g = Vec::with_capacity(probs.len());
            for (p, y) in probs.iter().zip(&t.proportions) {
                let diff = p - y;
                loss += t.weight * diff * diff;
                g.push(2.0 * t.weight * diff);
            }
            if want_grad {
                let shape: Vec<usize> = t.attrs.iter().map(|&a| domain_shape[a]).collect();
                let gf = Factor::from_log_values(t.attrs.clone(), shape, g)?;
                let expanded = gf.expand(
                    tree.cliques()[t.clique].as_slice(),
                    tree.clique_shape(t.clique),
                )?;
                grads[t.clique] = Some(match grads[t.clique].take() {
                    None => expanded,
                    Some(mut acc) => {
                        for (a, b) in acc.log_values_mut().iter_mut().zip(expanded.log_values()) {
                            *a += b;
                        }
                        acc
                    }
                });
            }
        }
        Ok((loss, grads))
    };

    let weight_scale: f64 = targets.iter().map(|t| t.weight).sum::<f64>().max(1.0);
    let mut step = options.initial_step / weight_scale;
    let mut cal = calibrate_naive(&tree, &theta)?;
    let (mut loss, _) = loss_and_grad(&cal, false)?;
    let mut final_loss = loss;

    for _ in 0..options.iterations {
        let (_, grads) = loss_and_grad(&cal, true)?;
        let mut accepted = false;
        for _ in 0..24 {
            let mut proposal = theta.clone();
            for (th, g) in proposal.iter_mut().zip(&grads) {
                if let Some(g) = g {
                    for (tv, gv) in th.log_values_mut().iter_mut().zip(g.log_values()) {
                        *tv -= step * gv;
                    }
                }
            }
            let new_cal = calibrate_naive(&tree, &proposal)?;
            let (new_loss, _) = loss_and_grad(&new_cal, false)?;
            if new_loss <= loss {
                theta = proposal;
                cal = new_cal;
                loss = new_loss;
                final_loss = new_loss;
                step *= 1.25;
                accepted = true;
                break;
            }
            step *= 0.5;
        }
        if !accepted {
            break;
        }
    }

    Ok(FittedModel {
        tree,
        calibrated: cal,
        n_estimate,
        final_loss,
        sampler: OnceLock::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Noiseless measurements must be recovered almost exactly.
    #[test]
    fn recovers_exact_marginals_without_noise() {
        // Two correlated binary attributes plus an independent third.
        // Joint counts for (0,1): strong diagonal.
        let domain = vec![2usize, 2, 3];
        let m01 = NoisyMeasurement {
            attrs: vec![0, 1],
            values: vec![400.0, 100.0, 100.0, 400.0],
            sigma: 1.0,
        };
        let m2 = NoisyMeasurement {
            attrs: vec![2],
            values: vec![500.0, 300.0, 200.0],
            sigma: 1.0,
        };
        let model = estimate(&domain, &[m01, m2], EstimationOptions::default()).unwrap();
        assert!((model.n_estimate() - 1000.0).abs() < 1.0);

        let got01 = model.marginal_or_independent(&[0, 1]).unwrap();
        for (g, e) in got01.iter().zip(&[0.4, 0.1, 0.1, 0.4]) {
            assert!((g - e).abs() < 0.01, "{got01:?}");
        }
        let got2 = model.marginal_or_independent(&[2]).unwrap();
        for (g, e) in got2.iter().zip(&[0.5, 0.3, 0.2]) {
            assert!((g - e).abs() < 0.01, "{got2:?}");
        }
    }

    #[test]
    fn chain_measurements_propagate_correlation() {
        // (0,1) correlated, (1,2) correlated => model implies (0,2)
        // correlation through the chain.
        let domain = vec![2usize, 2, 2];
        let strong = vec![450.0, 50.0, 50.0, 450.0];
        let ms = vec![
            NoisyMeasurement {
                attrs: vec![0, 1],
                values: strong.clone(),
                sigma: 1.0,
            },
            NoisyMeasurement {
                attrs: vec![1, 2],
                values: strong,
                sigma: 1.0,
            },
        ];
        let model = estimate(&domain, &ms, EstimationOptions::default()).unwrap();
        // p(0=0,2=0) should exceed independence (0.25): chain correlation.
        let m02 = model.marginal_or_independent(&[0, 2]).unwrap();
        // attrs (0,2) are not in one clique -> independence fallback would
        // give exactly 0.25; the calibrated model is only reachable through
        // cliques, so check the implied correlation through sampling instead
        // is done in sampling tests. Here check coverage marginals agree.
        assert!((m02.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let m1 = model.marginal_or_independent(&[1]).unwrap();
        assert!((m1[0] - 0.5).abs() < 0.02);
    }

    #[test]
    fn noisy_measurements_are_denoised_toward_consistency() {
        // The same marginal measured twice with disagreeing noise: the model
        // must settle between them.
        let domain = vec![2usize];
        let ms = vec![
            NoisyMeasurement {
                attrs: vec![0],
                values: vec![600.0, 400.0],
                sigma: 10.0,
            },
            NoisyMeasurement {
                attrs: vec![0],
                values: vec![640.0, 360.0],
                sigma: 10.0,
            },
        ];
        let model = estimate(&domain, &ms, EstimationOptions::default()).unwrap();
        let m = model.marginal_or_independent(&[0]).unwrap();
        assert!(m[0] > 0.58 && m[0] < 0.66, "{m:?}");
    }

    #[test]
    fn no_measurements_is_an_error() {
        assert!(matches!(
            estimate(&[2, 2], &[], EstimationOptions::default()),
            Err(PgmError::NoMeasurements)
        ));
    }

    #[test]
    fn wrong_value_count_is_an_error() {
        // 2x2 scope but only 3 values: must error, not fit with a silently
        // unconstrained cell.
        let bad = NoisyMeasurement {
            attrs: vec![0, 1],
            values: vec![10.0; 3],
            sigma: 1.0,
        };
        assert!(matches!(
            estimate(&[2, 2], &[bad], EstimationOptions::default()),
            Err(PgmError::ShapeMismatch {
                cells: 4,
                values: 3
            })
        ));
    }

    #[test]
    fn workspace_reuse_across_fits_is_identical() {
        // The same workspace serving two different measurement sets (and
        // therefore two different trees) must not leak state between fits.
        let domain = vec![2usize, 2, 3];
        let ms_a = vec![NoisyMeasurement {
            attrs: vec![0, 1],
            values: vec![400.0, 100.0, 100.0, 400.0],
            sigma: 1.0,
        }];
        let ms_b = vec![NoisyMeasurement {
            attrs: vec![1, 2],
            values: vec![100.0, 200.0, 300.0, 150.0, 150.0, 100.0],
            sigma: 2.0,
        }];
        let mut ws = CalibrationWorkspace::new();
        for ms in [&ms_a, &ms_b, &ms_a] {
            let shared = estimate_with(&domain, ms, EstimationOptions::default(), &mut ws).unwrap();
            let fresh = estimate(&domain, ms, EstimationOptions::default()).unwrap();
            assert_eq!(
                shared.calibrated().beliefs,
                fresh.calibrated().beliefs,
                "workspace reuse changed a fit"
            );
            assert_eq!(shared.final_loss(), fresh.final_loss());
        }
    }

    /// A full descent at every fit-thread count must be bit-identical to the
    /// sequential fit — odd counts catch remainder-chunk order bugs.
    #[test]
    fn fit_threads_are_bit_identical() {
        let domain = vec![3usize, 2, 4, 2, 3];
        let mut ms = Vec::new();
        // Overlapping pairs plus singletons: several cliques, several
        // targets per clique, ragged target sizes.
        for (a, b) in [(0usize, 1usize), (1, 2), (2, 3), (3, 4), (0, 4)] {
            let cells = domain[a] * domain[b];
            ms.push(NoisyMeasurement {
                attrs: vec![a.min(b), a.max(b)],
                values: (0..cells).map(|i| 40.0 + 13.0 * i as f64).collect(),
                sigma: 3.0,
            });
        }
        for a in 0..domain.len() {
            ms.push(NoisyMeasurement {
                attrs: vec![a],
                values: (0..domain[a]).map(|i| 250.0 - 20.0 * i as f64).collect(),
                sigma: 5.0,
            });
        }
        let opts = EstimationOptions {
            iterations: 40,
            ..EstimationOptions::default()
        };
        let baseline = estimate(&domain, &ms, opts).unwrap();
        for threads in [2usize, 3, 7] {
            let model = estimate(
                &domain,
                &ms,
                EstimationOptions {
                    fit_threads: threads,
                    ..opts
                },
            )
            .unwrap();
            assert_eq!(
                model.calibrated().beliefs,
                baseline.calibrated().beliefs,
                "fit_threads={threads} changed the fitted beliefs"
            );
            assert_eq!(
                model.final_loss().to_bits(),
                baseline.final_loss().to_bits()
            );
            assert_eq!(
                model.n_estimate().to_bits(),
                baseline.n_estimate().to_bits()
            );
        }
    }
}
