//! Error taxonomy for the graphical-model substrate.

use std::fmt;

/// Errors from factor algebra, junction-tree construction, estimation and
/// sampling.
#[derive(Debug, Clone, PartialEq)]
pub enum PgmError {
    /// Factor attributes must be sorted and distinct.
    UnsortedAttributes,
    /// An operation required one factor's scope to contain another's.
    ScopeMismatch,
    /// Shape and value-vector length disagree.
    ShapeMismatch { cells: usize, values: usize },
    /// A clique or factor would exceed the cell limit.
    CliqueTooLarge { cells: u128, limit: usize },
    /// The model has no measurements to estimate from.
    NoMeasurements,
    /// An attribute index exceeds the domain.
    AttributeOutOfBounds { index: usize, len: usize },
    /// A measurement's attribute set is not contained in any clique
    /// (junction-tree construction bug — should never surface to users).
    UncoveredMeasurement { attrs: Vec<usize> },
}

impl fmt::Display for PgmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PgmError::UnsortedAttributes => {
                write!(f, "factor attributes must be sorted and distinct")
            }
            PgmError::ScopeMismatch => write!(f, "factor scope mismatch"),
            PgmError::ShapeMismatch { cells, values } => {
                write!(f, "shape implies {cells} cells but {values} values given")
            }
            PgmError::CliqueTooLarge { cells, limit } => {
                write!(f, "clique has {cells} cells, over limit {limit}")
            }
            PgmError::NoMeasurements => write!(f, "no measurements provided"),
            PgmError::AttributeOutOfBounds { index, len } => {
                write!(f, "attribute {index} out of bounds for domain of {len}")
            }
            PgmError::UncoveredMeasurement { attrs } => {
                write!(f, "measurement over {attrs:?} not covered by any clique")
            }
        }
    }
}

impl std::error::Error for PgmError {}

/// Convenience alias used throughout the PGM crate.
pub type Result<T> = std::result::Result<T, PgmError>;
