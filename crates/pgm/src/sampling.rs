//! Ancestral sampling from a calibrated junction tree.
//!
//! The sampler walks each tree component from a root clique: the root's
//! joint is sampled directly, each child clique is then sampled conditioned
//! on the separator codes already fixed by its parent. Conditional
//! cumulative tables are precomputed per clique, so drawing a row costs a
//! binary search per clique.

use crate::error::Result;
use crate::estimation::FittedModel;
use crate::factor::strides_of;
use crate::workspace::CalibrationWorkspace;
use rand::Rng;

/// Precomputed sampler for a fitted model.
#[derive(Debug, Clone)]
pub struct TreeSampler {
    n_attrs: usize,
    nodes: Vec<Node>,
}

#[derive(Debug, Clone)]
struct Node {
    /// Clique attribute ids.
    attrs: Vec<usize>,
    /// Clique shape and strides.
    shape: Vec<usize>,
    strides: Vec<usize>,
    /// Positions (within this clique) of the separator attributes
    /// (empty for roots).
    sep_positions: Vec<usize>,
    /// For each separator configuration: cumulative probabilities over the
    /// member cells of that configuration. Roots have exactly one group.
    groups: Vec<Group>,
    /// Mixed-radix strides over separator configurations.
    sep_strides: Vec<usize>,
}

#[derive(Debug, Clone)]
struct Group {
    cells: Vec<usize>,
    cumulative: Vec<f64>,
}

impl TreeSampler {
    /// Build the sampler from a fitted model.
    pub fn new(model: &FittedModel) -> Result<TreeSampler> {
        let mut ws = CalibrationWorkspace::new();
        Self::new_with_workspace(model, &mut ws)
    }

    /// Build the sampler reusing a calibration workspace's probability
    /// scratch (the same arena a synthesizer threads through
    /// [`crate::estimation::estimate_with`]), so belief probabilities are
    /// materialized without per-clique factor-buffer allocations.
    pub fn new_with_workspace(
        model: &FittedModel,
        ws: &mut CalibrationWorkspace,
    ) -> Result<TreeSampler> {
        let tree = model.tree();
        // Only the probability scratch is needed here; a workspace already
        // built for this tree (the estimate_with flow) reuses it as-is,
        // and a fresh one sizes just that buffer — not plans or messages.
        ws.ensure_prob_scratch(tree);
        let k = tree.cliques().len();

        // Root each component and order cliques BFS (parents first).
        let mut parent: Vec<Option<(usize, usize)>> = vec![None; k];
        let mut order = Vec::with_capacity(k);
        let mut seen = vec![false; k];
        for root in 0..k {
            if seen[root] {
                continue;
            }
            seen[root] = true;
            let mut queue = std::collections::VecDeque::from([root]);
            while let Some(c) = queue.pop_front() {
                order.push(c);
                for &(nbr, e) in tree.neighbors(c) {
                    if !seen[nbr] {
                        seen[nbr] = true;
                        parent[nbr] = Some((c, e));
                        queue.push_back(nbr);
                    }
                }
            }
        }

        let mut nodes = Vec::with_capacity(k);
        for &c in &order {
            let attrs = tree.cliques()[c].clone();
            let shape = tree.clique_shape(c).to_vec();
            let strides = strides_of(&shape);
            let belief = &model.calibrated().beliefs[c];
            let probs = &mut ws.prob_scratch_mut()[..belief.n_cells()];
            belief.probabilities_into(probs);

            let sep_attrs: Vec<usize> = match parent[c] {
                Some((_, e)) => tree.edges()[e].2.clone(),
                None => Vec::new(),
            };
            let sep_positions: Vec<usize> = sep_attrs
                .iter()
                .map(|a| {
                    attrs
                        .iter()
                        .position(|x| x == a)
                        .expect("separator ⊆ clique")
                })
                .collect();
            let sep_shape: Vec<usize> = sep_positions.iter().map(|&p| shape[p]).collect();
            let sep_strides = strides_of(&sep_shape);
            let n_groups: usize = sep_shape.iter().product::<usize>().max(1);

            // Group cells by separator configuration, then cumsum.
            let mut groups: Vec<Group> = (0..n_groups)
                .map(|_| Group {
                    cells: Vec::new(),
                    cumulative: Vec::new(),
                })
                .collect();
            for (cell, &p) in probs.iter().enumerate() {
                let mut g = 0usize;
                for (k2, &pos) in sep_positions.iter().enumerate() {
                    let code = (cell / strides[pos]) % shape[pos];
                    g += code * sep_strides[k2];
                }
                groups[g].cells.push(cell);
                groups[g].cumulative.push(p.max(0.0));
            }
            for group in &mut groups {
                let mut acc = 0.0;
                for v in group.cumulative.iter_mut() {
                    acc += *v;
                    *v = acc;
                }
                if acc <= 0.0 {
                    // Unseen separator configuration: uniform fallback.
                    let n = group.cumulative.len().max(1) as f64;
                    for (i, v) in group.cumulative.iter_mut().enumerate() {
                        *v = (i + 1) as f64 / n;
                    }
                } else {
                    for v in group.cumulative.iter_mut() {
                        *v /= acc;
                    }
                }
            }

            nodes.push(Node {
                attrs,
                shape,
                strides,
                sep_positions,
                groups,
                sep_strides,
            });
        }

        Ok(TreeSampler {
            n_attrs: tree.domain_shape().len(),
            nodes,
        })
    }

    /// Sample `n` rows into column-major storage.
    pub fn sample_columns<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Vec<u32>> {
        let mut columns = vec![vec![0u32; n]; self.n_attrs];
        let mut row = vec![0u32; self.n_attrs];
        for r in 0..n {
            self.sample_row(&mut row, rng);
            for (a, col) in columns.iter_mut().enumerate() {
                col[r] = row[a];
            }
        }
        columns
    }

    /// Sample a single row in place (`row.len() == n_attrs`).
    pub fn sample_row<R: Rng + ?Sized>(&self, row: &mut [u32], rng: &mut R) {
        debug_assert_eq!(row.len(), self.n_attrs);
        for node in &self.nodes {
            // Locate the group from already-fixed separator codes.
            let mut g = 0usize;
            for (k, &pos) in node.sep_positions.iter().enumerate() {
                let attr = node.attrs[pos];
                g += row[attr] as usize * node.sep_strides[k];
            }
            let group = &node.groups[g];
            let u: f64 = rng.gen();
            let slot = match group
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&u).expect("finite cumulative"))
            {
                Ok(i) => i,
                Err(i) => i.min(group.cumulative.len().saturating_sub(1)),
            };
            let cell = group.cells[slot];
            for (k, &attr) in node.attrs.iter().enumerate() {
                row[attr] = ((cell / node.strides[k]) % node.shape[k]) as u32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimation::{estimate, EstimationOptions, NoisyMeasurement};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fit_chain() -> FittedModel {
        // Strongly correlated chain 0-1-2 of binary attributes.
        let domain = vec![2usize, 2, 2];
        let strong = vec![450.0, 50.0, 50.0, 450.0];
        let ms = vec![
            NoisyMeasurement {
                attrs: vec![0, 1],
                values: strong.clone(),
                sigma: 1.0,
            },
            NoisyMeasurement {
                attrs: vec![1, 2],
                values: strong,
                sigma: 1.0,
            },
        ];
        estimate(&domain, &ms, EstimationOptions::default()).unwrap()
    }

    #[test]
    fn samples_match_fitted_marginals() {
        let model = fit_chain();
        let sampler = TreeSampler::new(&model).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let cols = sampler.sample_columns(40_000, &mut rng);
        // Pair (0,1) frequencies ≈ [0.45, 0.05, 0.05, 0.45].
        let mut counts = [0.0f64; 4];
        for r in 0..40_000 {
            counts[(cols[0][r] * 2 + cols[1][r]) as usize] += 1.0;
        }
        for c in counts.iter_mut() {
            *c /= 40_000.0;
        }
        for (got, expect) in counts.iter().zip(&[0.45, 0.05, 0.05, 0.45]) {
            assert!((got - expect).abs() < 0.015, "{counts:?}");
        }
    }

    #[test]
    fn chain_correlation_propagates_to_unmeasured_pair() {
        let model = fit_chain();
        let sampler = TreeSampler::new(&model).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let cols = sampler.sample_columns(40_000, &mut rng);
        // Correlation of (0,2) through the chain: agreement prob
        // = 0.9*0.9 + 0.1*0.1 = 0.82.
        let agree = (0..40_000).filter(|&r| cols[0][r] == cols[2][r]).count() as f64 / 40_000.0;
        assert!((agree - 0.82).abs() < 0.02, "agree = {agree}");
    }

    #[test]
    fn sampling_is_deterministic_given_seed() {
        let model = fit_chain();
        let sampler = TreeSampler::new(&model).unwrap();
        let a = sampler.sample_columns(100, &mut StdRng::seed_from_u64(5));
        let b = sampler.sample_columns(100, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
