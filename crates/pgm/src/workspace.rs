//! Reusable scratch arena for the calibration hot path.
//!
//! [`CalibrationWorkspace`] owns every buffer and precomputed stride table
//! that belief propagation needs for a given junction tree: the BFS
//! schedule, one separator-scoped message factor per directed edge, one
//! [`StridePlan`] per edge side (used both to broadcast a message onto its
//! clique and to marginalize a clique product onto its separator), and
//! clique-sized scratch slices. Built once (lazily, on the first
//! [`crate::inference::calibrate_into`] call), then reused across every
//! calibration of the same tree — which is what lets the 120-iteration
//! mirror-descent loop in [`crate::estimation::estimate`] run with **zero
//! factor-buffer allocations after warm-up** (pinned by the allocation
//! counter test in `tests/calibration_determinism.rs`).

use crate::error::Result;
use crate::factor::{note_buffer_alloc, Factor, StridePlan};
use crate::junction_tree::JunctionTree;

/// Scratch arena bound to one junction-tree topology (rebuilt automatically
/// when handed a different tree).
#[derive(Debug, Default)]
pub struct CalibrationWorkspace {
    /// Fingerprint of the tree the buffers were built for (0 = unbuilt).
    fingerprint: u64,
    /// BFS visit order, parents before children, across all components.
    pub(crate) order: Vec<usize>,
    /// `parent[c] = (parent clique, edge index)` for non-root cliques.
    pub(crate) parent: Vec<Option<(usize, usize)>>,
    /// Message factor per directed slot: `2e` for low→high clique index,
    /// `2e + 1` for high→low (the classic Shafer–Shenoy layout).
    pub(crate) messages: Vec<Factor>,
    /// Whether a directed slot has been computed this calibration.
    pub(crate) filled: Vec<bool>,
    /// Per edge `(i, j)`: stride plans embedding the separator into clique
    /// `i` resp. `j`. One plan serves both kernel directions (broadcast a
    /// message into the clique; marginalize the clique onto the separator).
    pub(crate) plans: Vec<(StridePlan, StridePlan)>,
    /// Scratch sized to the largest clique (message products).
    pub(crate) clique_scratch: Vec<f64>,
    /// Max/sum scratch for strided marginalization, sized to the largest
    /// clique (safe upper bound for separators and measurement scopes).
    pub(crate) marg_maxes: Vec<f64>,
    pub(crate) marg_sums: Vec<f64>,
    /// Probability scratch sized to the largest clique (sampler, loss).
    pub(crate) prob_scratch: Vec<f64>,
    /// Flat max/sum arena for the estimation loss pass: one disjoint
    /// `(maxes, sums)` pair per measurement target, so targets can be
    /// marginalized concurrently (and the sequential path replays exactly
    /// the same per-slice operations). Sized by `estimate_with` during
    /// warm-up; grow-only, so AIM's repeated refits reuse one arena.
    pub(crate) target_scratch: Vec<f64>,
}

/// Cheap structural fingerprint of a junction tree (FNV-1a over cliques,
/// shapes and edges). Collisions would only ever reuse wrong-sized buffers
/// across *different* trees handed to one workspace, and every buffer is
/// shape-checked in debug builds; equal trees always match.
fn tree_fingerprint(tree: &JunctionTree) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(tree.cliques().len() as u64);
    for (i, clique) in tree.cliques().iter().enumerate() {
        eat(clique.len() as u64);
        for (&a, &s) in clique.iter().zip(tree.clique_shape(i)) {
            eat(a as u64);
            eat(s as u64);
        }
    }
    eat(tree.edges().len() as u64);
    for (i, j, sep) in tree.edges() {
        eat(*i as u64);
        eat(*j as u64);
        eat(sep.len() as u64);
        for &a in sep {
            eat(a as u64);
        }
    }
    h.max(1) // reserve 0 for "unbuilt"
}

impl CalibrationWorkspace {
    /// An empty workspace; buffers are built on first use.
    pub fn new() -> CalibrationWorkspace {
        CalibrationWorkspace::default()
    }

    /// Message slot for `edge` when sent *from* clique `from`.
    #[inline]
    pub(crate) fn slot(tree: &JunctionTree, edge: usize, from: usize) -> usize {
        let (i, _, _) = tree.edges()[edge];
        if from == i {
            2 * edge
        } else {
            2 * edge + 1
        }
    }

    /// The separator↔clique stride plan for `edge` on the `clique` side.
    #[inline]
    pub(crate) fn plan_for(&self, edge: usize, clique: usize, tree: &JunctionTree) -> &StridePlan {
        let (i, _, _) = tree.edges()[edge];
        if clique == i {
            &self.plans[edge].0
        } else {
            &self.plans[edge].1
        }
    }

    /// Rebuild buffers if `tree` differs from the one this workspace was
    /// built for; always resets the per-calibration message flags.
    ///
    /// # Errors
    /// Propagates factor-construction errors (cannot happen for trees built
    /// by [`JunctionTree::build`]).
    pub(crate) fn ensure(&mut self, tree: &JunctionTree) -> Result<()> {
        let fp = tree_fingerprint(tree);
        if self.fingerprint == fp {
            self.filled.fill(false);
            return Ok(());
        }

        let k = tree.cliques().len();

        // BFS order per component; parent[c] = (parent clique, edge index).
        let mut parent: Vec<Option<(usize, usize)>> = vec![None; k];
        let mut order: Vec<usize> = Vec::with_capacity(k);
        let mut seen = vec![false; k];
        for root in 0..k {
            if seen[root] {
                continue;
            }
            seen[root] = true;
            let mut queue = std::collections::VecDeque::from([root]);
            while let Some(c) = queue.pop_front() {
                order.push(c);
                for &(nbr, e) in tree.neighbors(c) {
                    if !seen[nbr] {
                        seen[nbr] = true;
                        parent[nbr] = Some((c, e));
                        queue.push_back(nbr);
                    }
                }
            }
        }

        let mut messages = Vec::with_capacity(2 * tree.edges().len());
        let mut plans = Vec::with_capacity(tree.edges().len());
        for (i, j, sep) in tree.edges() {
            let sep_shape: Vec<usize> = sep.iter().map(|&a| tree.domain_shape()[a]).collect();
            let plan_i =
                StridePlan::embed(sep, &sep_shape, &tree.cliques()[*i], tree.clique_shape(*i))?;
            let plan_j =
                StridePlan::embed(sep, &sep_shape, &tree.cliques()[*j], tree.clique_shape(*j))?;
            plans.push((plan_i, plan_j));
            // Two directed slots per edge, both separator-scoped.
            messages.push(Factor::uniform(sep.clone(), sep_shape.clone())?);
            messages.push(Factor::uniform(sep.clone(), sep_shape)?);
        }

        let max_clique_cells = tree.max_clique_cells().max(1);
        note_buffer_alloc(); // clique_scratch
        note_buffer_alloc(); // marg_maxes
        note_buffer_alloc(); // marg_sums
        note_buffer_alloc(); // prob_scratch

        self.fingerprint = fp;
        self.order = order;
        self.parent = parent;
        self.filled = vec![false; messages.len()];
        self.messages = messages;
        self.plans = plans;
        self.clique_scratch = vec![0.0; max_clique_cells];
        self.marg_maxes = vec![0.0; max_clique_cells];
        self.marg_sums = vec![0.0; max_clique_cells];
        self.prob_scratch = vec![0.0; max_clique_cells];
        Ok(())
    }

    /// Probability scratch (at least the largest clique's cell count);
    /// available after the workspace has been built for a tree.
    pub(crate) fn prob_scratch_mut(&mut self) -> &mut [f64] {
        &mut self.prob_scratch
    }

    /// Grow the per-target marginalization arena to at least `len` floats
    /// (2 × total measurement cells for the current fit). A no-op once the
    /// arena is large enough, so the mirror-descent loop stays
    /// allocation-free after warm-up.
    pub(crate) fn ensure_target_scratch(&mut self, len: usize) {
        if self.target_scratch.len() < len {
            note_buffer_alloc();
            self.target_scratch.resize(len, 0.0);
        }
    }

    /// Size only the probability scratch for `tree` (a no-op when the
    /// workspace was already built for it). Consumers that need just the
    /// scratch — sampler construction through a fresh workspace — must not
    /// pay for message factors and stride plans they never read.
    pub(crate) fn ensure_prob_scratch(&mut self, tree: &JunctionTree) {
        if self.fingerprint == tree_fingerprint(tree) {
            return;
        }
        let cells = tree.max_clique_cells().max(1);
        if self.prob_scratch.len() < cells {
            note_buffer_alloc();
            self.prob_scratch = vec![0.0; cells];
        }
    }
}
