//! Belief-propagation calibration on a junction tree (Shafer–Shenoy).
//!
//! Given one log-potential per clique, calibration computes the normalized
//! clique marginals of the implied Markov random field
//! `p(x) ∝ Π_c exp(θ_c(x_c))` with two sweeps of message passing per tree
//! component.
//!
//! The production path is [`calibrate_into`]: it runs entirely inside a
//! [`CalibrationWorkspace`] — message products accumulate in a clique-sized
//! scratch slice via precomputed stride plans, marginalization streams into
//! separator buffers, and beliefs are written into a caller-owned
//! [`CalibratedTree`] — so repeated calibrations of the same tree perform
//! no factor-buffer allocations. The original allocate-per-operation
//! implementation is retained as [`calibrate_naive`] (differential-testing
//! oracle, `naive-reference` feature) and produces **bit-identical**
//! beliefs: both paths execute the same floating-point operations in the
//! same order per cell.

use crate::error::{PgmError, Result};
use crate::factor::{bcast_add, marg_finish, marg_max, marg_sum, normalize_log_values, Factor};
use crate::junction_tree::JunctionTree;
use crate::workspace::CalibrationWorkspace;

/// A calibrated junction tree: per-clique normalized log-marginals that
/// agree on every separator.
#[derive(Debug, Clone, Default)]
pub struct CalibratedTree {
    /// Normalized belief (log-probability table) per clique.
    pub beliefs: Vec<Factor>,
}

impl CalibratedTree {
    /// Normalized marginal probabilities over `attrs` (must be inside one
    /// clique).
    ///
    /// # Errors
    /// [`PgmError::UncoveredMeasurement`] if no clique contains `attrs`.
    pub fn marginal(&self, tree: &JunctionTree, attrs: &[usize]) -> Result<Vec<f64>> {
        let clique =
            tree.containing_clique(attrs)
                .ok_or_else(|| PgmError::UncoveredMeasurement {
                    attrs: attrs.to_vec(),
                })?;
        let m = self.beliefs[clique].marginalize_keep(attrs)?;
        Ok(m.probabilities())
    }
}

/// Check that `potentials[i]` has exactly clique `i`'s scope.
fn validate_potentials(tree: &JunctionTree, potentials: &[Factor]) -> Result<()> {
    if potentials.len() != tree.cliques().len() {
        return Err(PgmError::ScopeMismatch);
    }
    for (i, p) in potentials.iter().enumerate() {
        if p.attrs() != tree.cliques()[i].as_slice() {
            return Err(PgmError::ScopeMismatch);
        }
    }
    Ok(())
}

/// Run two-pass message passing and return the calibrated beliefs.
///
/// One-shot convenience over [`calibrate_into`] (allocates a fresh
/// workspace; hot loops should hold a [`CalibrationWorkspace`] and call
/// [`calibrate_into`] directly).
///
/// `potentials[i]` must have exactly clique `i`'s scope.
pub fn calibrate(tree: &JunctionTree, potentials: &[Factor]) -> Result<CalibratedTree> {
    let mut ws = CalibrationWorkspace::new();
    let mut out = CalibratedTree::default();
    calibrate_into(tree, potentials, &mut ws, &mut out)?;
    Ok(out)
}

/// Two-pass message passing into a reusable workspace and caller-owned
/// output. After the first call for a given tree (which sizes every
/// buffer), subsequent calls allocate nothing.
///
/// # Errors
/// [`PgmError::ScopeMismatch`] when `potentials` don't match the cliques.
pub fn calibrate_into(
    tree: &JunctionTree,
    potentials: &[Factor],
    ws: &mut CalibrationWorkspace,
    out: &mut CalibratedTree,
) -> Result<()> {
    validate_potentials(tree, potentials)?;
    ws.ensure(tree)?;

    // Upward pass: leaves to root (reverse BFS order).
    for idx in (0..ws.order.len()).rev() {
        let c = ws.order[idx];
        if let Some((p, e)) = ws.parent[c] {
            compute_message_into(tree, potentials, ws, c, p, e);
        }
    }
    // Downward pass: root to leaves (BFS order).
    for idx in 0..ws.order.len() {
        let c = ws.order[idx];
        if let Some((p, e)) = ws.parent[c] {
            compute_message_into(tree, potentials, ws, p, c, e);
        }
    }

    // Beliefs: potential × all incoming messages, normalized.
    ensure_beliefs(out, tree)?;
    for (c, potential) in potentials.iter().enumerate() {
        let belief = &mut out.beliefs[c];
        belief.copy_values_from(potential);
        for &(nbr, e) in tree.neighbors(c) {
            let slot = CalibrationWorkspace::slot(tree, e, nbr);
            debug_assert!(ws.filled[slot], "two-pass schedule fills all messages");
            let plan = ws.plan_for(e, c, tree);
            bcast_add(
                belief.log_values_mut(),
                ws.messages[slot].log_values(),
                plan,
            );
        }
        belief.normalize();
    }
    Ok(())
}

/// Size `out.beliefs` to the tree's cliques, reusing buffers whose scope
/// already matches.
fn ensure_beliefs(out: &mut CalibratedTree, tree: &JunctionTree) -> Result<()> {
    let k = tree.cliques().len();
    out.beliefs.truncate(k);
    for c in 0..k {
        let matches = out
            .beliefs
            .get(c)
            .is_some_and(|b| b.attrs() == tree.cliques()[c] && b.shape() == tree.clique_shape(c));
        if !matches {
            let fresh = Factor::uniform(tree.cliques()[c].clone(), tree.clique_shape(c).to_vec())?;
            if c < out.beliefs.len() {
                out.beliefs[c] = fresh;
            } else {
                out.beliefs.push(fresh);
            }
        }
    }
    Ok(())
}

/// Message from clique `from` to clique `to` over edge `e`: marginalize
/// (potential(from) × incoming messages except from `to`) onto the
/// separator, entirely in workspace scratch. Mirrors the naive
/// `compute_message` operation-for-operation.
fn compute_message_into(
    tree: &JunctionTree,
    potentials: &[Factor],
    ws: &mut CalibrationWorkspace,
    from: usize,
    to: usize,
    e: usize,
) {
    let cells = potentials[from].n_cells();
    let product = &mut ws.clique_scratch[..cells];
    product.copy_from_slice(potentials[from].log_values());
    for &(nbr, edge) in tree.neighbors(from) {
        if nbr == to && edge == e {
            continue;
        }
        let slot = CalibrationWorkspace::slot(tree, edge, nbr);
        if ws.filled[slot] {
            let (i, _, _) = tree.edges()[edge];
            let plan = if from == i {
                &ws.plans[edge].0
            } else {
                &ws.plans[edge].1
            };
            bcast_add(product, ws.messages[slot].log_values(), plan);
        }
    }

    let out_slot = CalibrationWorkspace::slot(tree, e, from);
    let (i, _, _) = tree.edges()[e];
    let plan = if from == i {
        &ws.plans[e].0
    } else {
        &ws.plans[e].1
    };
    let sep_cells = plan.small_cells();
    let msg = ws.messages[out_slot].log_values_mut();
    if plan.is_identity() {
        // Degenerate separator == clique (cannot arise from maximal
        // cliques, but keep the naive identity fast path bit-for-bit).
        msg.copy_from_slice(product);
    } else {
        let maxes = &mut ws.marg_maxes[..sep_cells];
        let sums = &mut ws.marg_sums[..sep_cells];
        maxes.fill(f64::NEG_INFINITY);
        sums.fill(0.0);
        marg_max(product, maxes, plan);
        marg_sum(product, maxes, sums, plan);
        marg_finish(maxes, sums, msg);
    }
    // Rescale messages to avoid drift; beliefs are normalized at the end.
    normalize_log_values(msg);
    ws.filled[out_slot] = true;
}

// ---------------------------------------------------------------------------
// Naive reference calibration — the differential-testing oracle.
// ---------------------------------------------------------------------------

/// The original allocate-per-operation calibration, built on the naive
/// factor algebra. Retained as the bit-identity oracle for
/// [`calibrate_into`] (see `tests/calibration_determinism.rs`).
#[cfg(any(test, feature = "naive-reference"))]
pub fn calibrate_naive(tree: &JunctionTree, potentials: &[Factor]) -> Result<CalibratedTree> {
    validate_potentials(tree, potentials)?;
    let k = tree.cliques().len();

    // BFS order per component; parent[i] = (parent clique, edge index).
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; k];
    let mut order: Vec<usize> = Vec::with_capacity(k);
    let mut seen = vec![false; k];
    for root in 0..k {
        if seen[root] {
            continue;
        }
        seen[root] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(c) = queue.pop_front() {
            order.push(c);
            for &(nbr, e) in tree.neighbors(c) {
                if !seen[nbr] {
                    seen[nbr] = true;
                    parent[nbr] = Some((c, e));
                    queue.push_back(nbr);
                }
            }
        }
    }

    let n_edges = tree.edges().len();
    let mut messages: Vec<Option<Factor>> = vec![None; 2 * n_edges];

    // Upward pass: leaves to root (reverse BFS order).
    for &c in order.iter().rev() {
        if let Some((p, e)) = parent[c] {
            let msg = naive_message(tree, potentials, &messages, c, p, e)?;
            messages[CalibrationWorkspace::slot(tree, e, c)] = Some(msg);
        }
    }
    // Downward pass: root to leaves (BFS order).
    for &c in order.iter() {
        if let Some((p, e)) = parent[c] {
            let msg = naive_message(tree, potentials, &messages, p, c, e)?;
            messages[CalibrationWorkspace::slot(tree, e, p)] = Some(msg);
        }
    }

    // Beliefs: potential × all incoming messages, normalized.
    let mut beliefs = Vec::with_capacity(k);
    for c in 0..k {
        let mut belief = potentials[c].clone();
        for &(nbr, e) in tree.neighbors(c) {
            let incoming = messages[CalibrationWorkspace::slot(tree, e, nbr)]
                .as_ref()
                .expect("two-pass schedule fills all messages");
            belief = belief.naive_multiply(incoming)?;
        }
        belief.normalize();
        beliefs.push(belief);
    }
    Ok(CalibratedTree { beliefs })
}

#[cfg(any(test, feature = "naive-reference"))]
fn naive_message(
    tree: &JunctionTree,
    potentials: &[Factor],
    messages: &[Option<Factor>],
    from: usize,
    to: usize,
    e: usize,
) -> Result<Factor> {
    let mut product = potentials[from].clone();
    for &(nbr, edge) in tree.neighbors(from) {
        if nbr == to && edge == e {
            continue;
        }
        if let Some(msg) = messages[CalibrationWorkspace::slot(tree, edge, nbr)].as_ref() {
            product = product.naive_multiply(msg)?;
        }
    }
    let (_, _, sep) = &tree.edges()[e];
    let mut msg = product.naive_marginalize_keep(sep)?;
    // Rescale messages to avoid drift; beliefs are normalized at the end.
    msg.normalize();
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force joint distribution from clique potentials.
    fn brute_force_joint(shape: &[usize], cliques: &[Vec<usize>], pots: &[Factor]) -> Vec<f64> {
        let cells: usize = shape.iter().product();
        let strides: Vec<usize> = {
            let mut s = vec![1; shape.len()];
            for i in (0..shape.len() - 1).rev() {
                s[i] = s[i + 1] * shape[i + 1];
            }
            s
        };
        let mut joint = vec![0.0f64; cells];
        for (idx, slot) in joint.iter_mut().enumerate() {
            let codes: Vec<usize> = (0..shape.len())
                .map(|a| (idx / strides[a]) % shape[a])
                .collect();
            let mut log_p = 0.0;
            for (clique, pot) in cliques.iter().zip(pots) {
                let cs: Vec<usize> = clique
                    .iter()
                    .map(|&a| pot.shape()[clique.iter().position(|&x| x == a).unwrap()])
                    .collect();
                let cstr = {
                    let mut s = vec![1; cs.len()];
                    for i in (0..cs.len().saturating_sub(1)).rev() {
                        s[i] = s[i + 1] * cs[i + 1];
                    }
                    s
                };
                let mut cidx = 0;
                for (k, &a) in clique.iter().enumerate() {
                    cidx += codes[a] * cstr[k];
                }
                log_p += pot.log_values()[cidx];
            }
            *slot = log_p.exp();
        }
        let z: f64 = joint.iter().sum();
        joint.iter().map(|v| v / z).collect()
    }

    #[test]
    fn calibration_matches_brute_force_on_chain() {
        let shape = vec![2, 3, 2];
        let sets = vec![vec![0, 1], vec![1, 2]];
        let tree = JunctionTree::build(&shape, &sets, 1 << 20).unwrap();
        // Arbitrary potentials per clique (deterministic pattern).
        let pots: Vec<Factor> = tree
            .cliques()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let cshape: Vec<usize> = c.iter().map(|&a| shape[a]).collect();
                let cells: usize = cshape.iter().product();
                let vals: Vec<f64> = (0..cells)
                    .map(|k| ((k as f64) * 0.37 + i as f64 * 0.11).sin() * 0.8)
                    .collect();
                Factor::from_log_values(c.clone(), cshape, vals).unwrap()
            })
            .collect();
        let cal = calibrate(&tree, &pots).unwrap();
        let joint = brute_force_joint(&shape, tree.cliques(), &pots);

        // Check the pair marginal (1,2) against brute force.
        let got = cal.marginal(&tree, &[1, 2]).unwrap();
        let mut expect = vec![0.0; 6];
        for (idx, &p) in joint.iter().enumerate() {
            let c1 = (idx / 2) % 3;
            let c2 = idx % 2;
            expect[c1 * 2 + c2] += p;
        }
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-9, "{got:?} vs {expect:?}");
        }
        // And a single marginal through a different clique.
        let got0 = cal.marginal(&tree, &[0]).unwrap();
        let mut expect0 = vec![0.0; 2];
        for (idx, &p) in joint.iter().enumerate() {
            expect0[idx / 6] += p;
        }
        for (g, e) in got0.iter().zip(&expect0) {
            assert!((g - e).abs() < 1e-9);
        }
    }

    #[test]
    fn separator_consistency() {
        let shape = vec![2, 2, 2, 2];
        let sets = vec![vec![0, 1], vec![1, 2], vec![2, 3]];
        let tree = JunctionTree::build(&shape, &sets, 1 << 20).unwrap();
        let pots: Vec<Factor> = tree
            .cliques()
            .iter()
            .map(|c| {
                let cshape: Vec<usize> = c.iter().map(|&a| shape[a]).collect();
                let cells: usize = cshape.iter().product();
                let vals: Vec<f64> = (0..cells).map(|k| (k as f64 * 0.61).cos()).collect();
                Factor::from_log_values(c.clone(), cshape, vals).unwrap()
            })
            .collect();
        let cal = calibrate(&tree, &pots).unwrap();
        // Neighboring beliefs must agree on their separator marginals.
        for (i, j, sep) in tree.edges() {
            let mi = cal.beliefs[*i]
                .marginalize_keep(sep)
                .unwrap()
                .probabilities();
            let mj = cal.beliefs[*j]
                .marginalize_keep(sep)
                .unwrap()
                .probabilities();
            for (a, b) in mi.iter().zip(&mj) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn forest_components_are_independent() {
        // Two disconnected pairs.
        let shape = vec![2, 2, 3, 3];
        let sets = vec![vec![0, 1], vec![2, 3]];
        let tree = JunctionTree::build(&shape, &sets, 1 << 20).unwrap();
        let pots: Vec<Factor> = tree
            .cliques()
            .iter()
            .map(|c| {
                let cshape: Vec<usize> = c.iter().map(|&a| shape[a]).collect();
                Factor::uniform(c.clone(), cshape).unwrap()
            })
            .collect();
        let cal = calibrate(&tree, &pots).unwrap();
        let m = cal.marginal(&tree, &[0]).unwrap();
        assert!((m[0] - 0.5).abs() < 1e-12);
        let m2 = cal.marginal(&tree, &[2]).unwrap();
        assert!((m2[0] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn workspace_reuse_is_identical_to_fresh_calibration() {
        let shape = vec![2, 3, 2, 2];
        let sets = vec![vec![0, 1], vec![1, 2], vec![2, 3]];
        let tree = JunctionTree::build(&shape, &sets, 1 << 20).unwrap();
        let pots = |seed: f64| -> Vec<Factor> {
            tree.cliques()
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let cshape: Vec<usize> = c.iter().map(|&a| shape[a]).collect();
                    let cells: usize = cshape.iter().product();
                    let vals: Vec<f64> = (0..cells)
                        .map(|k| ((k as f64) * seed + i as f64 * 0.31).sin())
                        .collect();
                    Factor::from_log_values(c.clone(), cshape, vals).unwrap()
                })
                .collect()
        };
        let mut ws = CalibrationWorkspace::new();
        let mut out = CalibratedTree::default();
        for seed in [0.37, 0.59, 0.83] {
            let p = pots(seed);
            calibrate_into(&tree, &p, &mut ws, &mut out).unwrap();
            let fresh = calibrate(&tree, &p).unwrap();
            for (a, b) in out.beliefs.iter().zip(&fresh.beliefs) {
                assert_eq!(a, b, "workspace reuse drifted at seed {seed}");
            }
        }
    }
}
