//! Belief-propagation calibration on a junction tree (Shafer–Shenoy).
//!
//! Given one log-potential per clique, calibration computes the normalized
//! clique marginals of the implied Markov random field
//! `p(x) ∝ Π_c exp(θ_c(x_c))` with two sweeps of message passing per tree
//! component.

use crate::error::{PgmError, Result};
use crate::factor::Factor;
use crate::junction_tree::JunctionTree;

/// A calibrated junction tree: per-clique normalized log-marginals that
/// agree on every separator.
#[derive(Debug, Clone)]
pub struct CalibratedTree {
    /// Normalized belief (log-probability table) per clique.
    pub beliefs: Vec<Factor>,
}

impl CalibratedTree {
    /// Normalized marginal probabilities over `attrs` (must be inside one
    /// clique).
    ///
    /// # Errors
    /// [`PgmError::UncoveredMeasurement`] if no clique contains `attrs`.
    pub fn marginal(&self, tree: &JunctionTree, attrs: &[usize]) -> Result<Vec<f64>> {
        let clique =
            tree.containing_clique(attrs)
                .ok_or_else(|| PgmError::UncoveredMeasurement {
                    attrs: attrs.to_vec(),
                })?;
        let m = self.beliefs[clique].marginalize_keep(attrs)?;
        Ok(m.probabilities())
    }
}

/// Run two-pass message passing and return the calibrated beliefs.
///
/// `potentials[i]` must have exactly clique `i`'s scope.
pub fn calibrate(tree: &JunctionTree, potentials: &[Factor]) -> Result<CalibratedTree> {
    let k = tree.cliques().len();
    if potentials.len() != k {
        return Err(PgmError::ScopeMismatch);
    }
    for (i, p) in potentials.iter().enumerate() {
        if p.attrs() != tree.cliques()[i].as_slice() {
            return Err(PgmError::ScopeMismatch);
        }
    }

    // BFS order per component; parent[i] = (parent clique, edge index).
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; k];
    let mut order: Vec<usize> = Vec::with_capacity(k);
    let mut seen = vec![false; k];
    for root in 0..k {
        if seen[root] {
            continue;
        }
        seen[root] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(c) = queue.pop_front() {
            order.push(c);
            for &(nbr, e) in tree.neighbors(c) {
                if !seen[nbr] {
                    seen[nbr] = true;
                    parent[nbr] = Some((c, e));
                    queue.push_back(nbr);
                }
            }
        }
    }

    // Messages indexed by (edge, direction): direction 0 = low->high clique
    // index, 1 = high->low.
    let n_edges = tree.edges().len();
    let mut messages: Vec<Option<Factor>> = vec![None; 2 * n_edges];
    let msg_slot = |edge: usize, from: usize, tree: &JunctionTree| -> usize {
        let (i, _, _) = tree.edges()[edge];
        if from == i {
            2 * edge
        } else {
            2 * edge + 1
        }
    };

    // Upward pass: leaves to root (reverse BFS order).
    for &c in order.iter().rev() {
        if let Some((p, e)) = parent[c] {
            let msg = compute_message(tree, potentials, &messages, c, p, e, msg_slot)?;
            messages[msg_slot(e, c, tree)] = Some(msg);
        }
    }
    // Downward pass: root to leaves (BFS order).
    for &c in order.iter() {
        if let Some((p, e)) = parent[c] {
            let msg = compute_message(tree, potentials, &messages, p, c, e, msg_slot)?;
            messages[msg_slot(e, p, tree)] = Some(msg);
        }
    }

    // Beliefs: potential × all incoming messages, normalized.
    let mut beliefs = Vec::with_capacity(k);
    for c in 0..k {
        let mut belief = potentials[c].clone();
        for &(nbr, e) in tree.neighbors(c) {
            let incoming = messages[msg_slot(e, nbr, tree)]
                .as_ref()
                .expect("two-pass schedule fills all messages");
            belief = belief.multiply(incoming)?;
        }
        belief.normalize();
        beliefs.push(belief);
    }
    Ok(CalibratedTree { beliefs })
}

/// Message from clique `from` to clique `to` over edge `e`: marginalize
/// (potential(from) × incoming messages except from `to`) onto the separator.
fn compute_message(
    tree: &JunctionTree,
    potentials: &[Factor],
    messages: &[Option<Factor>],
    from: usize,
    to: usize,
    e: usize,
    msg_slot: impl Fn(usize, usize, &JunctionTree) -> usize,
) -> Result<Factor> {
    let mut product = potentials[from].clone();
    for &(nbr, edge) in tree.neighbors(from) {
        if nbr == to && edge == e {
            continue;
        }
        if let Some(msg) = messages[msg_slot(edge, nbr, tree)].as_ref() {
            product = product.multiply(msg)?;
        }
    }
    let (_, _, sep) = &tree.edges()[e];
    let mut msg = product.marginalize_keep(sep)?;
    // Rescale messages to avoid drift; beliefs are normalized at the end.
    msg.normalize();
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force joint distribution from clique potentials.
    fn brute_force_joint(shape: &[usize], cliques: &[Vec<usize>], pots: &[Factor]) -> Vec<f64> {
        let cells: usize = shape.iter().product();
        let strides: Vec<usize> = {
            let mut s = vec![1; shape.len()];
            for i in (0..shape.len() - 1).rev() {
                s[i] = s[i + 1] * shape[i + 1];
            }
            s
        };
        let mut joint = vec![0.0f64; cells];
        for (idx, slot) in joint.iter_mut().enumerate() {
            let codes: Vec<usize> = (0..shape.len())
                .map(|a| (idx / strides[a]) % shape[a])
                .collect();
            let mut log_p = 0.0;
            for (clique, pot) in cliques.iter().zip(pots) {
                let cs: Vec<usize> = clique
                    .iter()
                    .map(|&a| pot.shape()[clique.iter().position(|&x| x == a).unwrap()])
                    .collect();
                let cstr = {
                    let mut s = vec![1; cs.len()];
                    for i in (0..cs.len().saturating_sub(1)).rev() {
                        s[i] = s[i + 1] * cs[i + 1];
                    }
                    s
                };
                let mut cidx = 0;
                for (k, &a) in clique.iter().enumerate() {
                    cidx += codes[a] * cstr[k];
                }
                log_p += pot.log_values()[cidx];
            }
            *slot = log_p.exp();
        }
        let z: f64 = joint.iter().sum();
        joint.iter().map(|v| v / z).collect()
    }

    #[test]
    fn calibration_matches_brute_force_on_chain() {
        let shape = vec![2, 3, 2];
        let sets = vec![vec![0, 1], vec![1, 2]];
        let tree = JunctionTree::build(&shape, &sets, 1 << 20).unwrap();
        // Arbitrary potentials per clique (deterministic pattern).
        let pots: Vec<Factor> = tree
            .cliques()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let cshape: Vec<usize> = c.iter().map(|&a| shape[a]).collect();
                let cells: usize = cshape.iter().product();
                let vals: Vec<f64> = (0..cells)
                    .map(|k| ((k as f64) * 0.37 + i as f64 * 0.11).sin() * 0.8)
                    .collect();
                Factor::from_log_values(c.clone(), cshape, vals).unwrap()
            })
            .collect();
        let cal = calibrate(&tree, &pots).unwrap();
        let joint = brute_force_joint(&shape, tree.cliques(), &pots);

        // Check the pair marginal (1,2) against brute force.
        let got = cal.marginal(&tree, &[1, 2]).unwrap();
        let mut expect = vec![0.0; 6];
        for (idx, &p) in joint.iter().enumerate() {
            let c1 = (idx / 2) % 3;
            let c2 = idx % 2;
            expect[c1 * 2 + c2] += p;
        }
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-9, "{got:?} vs {expect:?}");
        }
        // And a single marginal through a different clique.
        let got0 = cal.marginal(&tree, &[0]).unwrap();
        let mut expect0 = vec![0.0; 2];
        for (idx, &p) in joint.iter().enumerate() {
            expect0[idx / 6] += p;
        }
        for (g, e) in got0.iter().zip(&expect0) {
            assert!((g - e).abs() < 1e-9);
        }
    }

    #[test]
    fn separator_consistency() {
        let shape = vec![2, 2, 2, 2];
        let sets = vec![vec![0, 1], vec![1, 2], vec![2, 3]];
        let tree = JunctionTree::build(&shape, &sets, 1 << 20).unwrap();
        let pots: Vec<Factor> = tree
            .cliques()
            .iter()
            .map(|c| {
                let cshape: Vec<usize> = c.iter().map(|&a| shape[a]).collect();
                let cells: usize = cshape.iter().product();
                let vals: Vec<f64> = (0..cells).map(|k| (k as f64 * 0.61).cos()).collect();
                Factor::from_log_values(c.clone(), cshape, vals).unwrap()
            })
            .collect();
        let cal = calibrate(&tree, &pots).unwrap();
        // Neighboring beliefs must agree on their separator marginals.
        for (i, j, sep) in tree.edges() {
            let mi = cal.beliefs[*i]
                .marginalize_keep(sep)
                .unwrap()
                .probabilities();
            let mj = cal.beliefs[*j]
                .marginalize_keep(sep)
                .unwrap()
                .probabilities();
            for (a, b) in mi.iter().zip(&mj) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn forest_components_are_independent() {
        // Two disconnected pairs.
        let shape = vec![2, 2, 3, 3];
        let sets = vec![vec![0, 1], vec![2, 3]];
        let tree = JunctionTree::build(&shape, &sets, 1 << 20).unwrap();
        let pots: Vec<Factor> = tree
            .cliques()
            .iter()
            .map(|c| {
                let cshape: Vec<usize> = c.iter().map(|&a| shape[a]).collect();
                Factor::uniform(c.clone(), cshape).unwrap()
            })
            .collect();
        let cal = calibrate(&tree, &pots).unwrap();
        let m = cal.marginal(&tree, &[0]).unwrap();
        assert!((m[0] - 0.5).abs() < 1e-12);
        let m2 = cal.marginal(&tree, &[2]).unwrap();
        assert!((m2[0] - 1.0 / 3.0).abs() < 1e-12);
    }
}
