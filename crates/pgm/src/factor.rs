//! Log-space factors over subsets of a discrete domain.
//!
//! A [`Factor`] stores log-potentials (or log-probabilities) over the cells
//! of an attribute subset, laid out row-major in ascending attribute order.
//! Products are additions in log space; marginalization uses a max-shifted
//! sum-exp per output cell, so calibration stays stable for the very peaked
//! potentials mirror descent produces at low noise.
//!
//! # Stride kernels
//!
//! The hot path (belief-propagation inside mirror descent) never
//! materializes a union scope: [`Factor::mul_assign_broadcast`] and
//! [`Factor::div_assign_broadcast`] walk the larger operand once with a
//! precomputed per-axis stride table ([`StridePlan`]), and
//! [`Factor::marginalize_keep`] accumulates through the same strided walk.
//! Every kernel performs the *same floating-point operations in the same
//! order* as the naive expand-then-zip implementations retained behind
//! `#[cfg(any(test, feature = "naive-reference"))]`, so results are
//! bit-identical — a property pinned by the differential proptests in
//! `tests/factor_equivalence.rs`.

use crate::error::{PgmError, Result};
use std::cell::Cell;

/// Row-major strides for a shape.
pub(crate) fn strides_of(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

thread_local! {
    /// Count of factor value-buffer allocations on this thread (factor
    /// construction, factor clones, and workspace buffer growth). Used by
    /// the zero-allocation regression tests and `perfgrid` diagnostics.
    static FACTOR_BUFFER_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Number of factor value-buffer allocations performed by the current
/// thread since it started. Monotone; take deltas around a region to count
/// its allocations. Calibration and estimation are single-threaded per fit,
/// so the counter is a faithful per-fit measure.
pub fn factor_buffer_allocs() -> u64 {
    FACTOR_BUFFER_ALLOCS.with(Cell::get)
}

/// Record one factor-sized buffer allocation (see [`factor_buffer_allocs`]).
pub(crate) fn note_buffer_alloc() {
    FACTOR_BUFFER_ALLOCS.with(|c| c.set(c.get() + 1));
}

/// Precomputed per-axis stride walk: while iterating the cells of a "big"
/// row-major shape in ascending index order, maintains the corresponding
/// index into a "small" operand whose axes are a subset of the big scope.
///
/// `inc[axis]` is the small-operand stride gained when the big counter's
/// `axis` digit increments (0 for axes absent from the small scope);
/// `wrap[axis] = inc[axis] · big_shape[axis]` is subtracted when the digit
/// wraps. One plan powers broadcasting (small read while big is written)
/// and marginalization (small written while big is read).
#[derive(Debug, Clone)]
pub(crate) struct StridePlan {
    big_shape: Vec<usize>,
    inc: Vec<usize>,
    wrap: Vec<usize>,
    big_cells: usize,
    small_cells: usize,
    /// True when the small scope *is* the big scope (index map is identity).
    identity: bool,
}

/// Stack space for the mixed-radix counter; factor ranks are bounded far
/// below this by the clique cell limit (2^21 cells ⇒ ≤ 21 non-trivial
/// axes). Larger ranks fall back to a heap counter.
const MAX_STACK_AXES: usize = 64;

impl StridePlan {
    /// Plan for embedding `small` (sorted attrs, matching cardinalities)
    /// into `big` (sorted attrs).
    ///
    /// # Errors
    /// [`PgmError::ScopeMismatch`] if `small ⊄ big` or cardinalities differ.
    pub(crate) fn embed(
        small_attrs: &[usize],
        small_shape: &[usize],
        big_attrs: &[usize],
        big_shape: &[usize],
    ) -> Result<StridePlan> {
        let small_strides = strides_of(small_shape);
        let mut inc = vec![0usize; big_attrs.len()];
        let mut si = 0usize;
        for (bi, (&attr, &card)) in big_attrs.iter().zip(big_shape).enumerate() {
            if si < small_attrs.len() && small_attrs[si] == attr {
                if small_shape[si] != card {
                    return Err(PgmError::ScopeMismatch);
                }
                inc[bi] = small_strides[si];
                si += 1;
            }
        }
        if si != small_attrs.len() {
            return Err(PgmError::ScopeMismatch);
        }
        let mut plan = StridePlan::from_axis_strides(big_shape, inc, small_shape.iter().product());
        // Exact scope equality — the condition the historical identity fast
        // paths used (stride equality alone can misfire on card-1 axes,
        // where a recompute is NOT a bitwise no-op: `-0.0 + 0.0 == +0.0`).
        plan.identity = small_attrs == big_attrs;
        Ok(plan)
    }

    /// Plan from explicit per-big-axis small strides (0 = axis summed out /
    /// replicated). Used directly by `marginalize_keep`, whose `keep` order
    /// need not be sorted.
    pub(crate) fn from_axis_strides(
        big_shape: &[usize],
        inc: Vec<usize>,
        small_cells: usize,
    ) -> StridePlan {
        let wrap: Vec<usize> = inc.iter().zip(big_shape).map(|(&i, &s)| i * s).collect();
        let big_cells = big_shape.iter().product();
        StridePlan {
            big_shape: big_shape.to_vec(),
            inc,
            wrap,
            big_cells,
            small_cells,
            // Callers that can prove exact scope equality set this
            // (see `embed`); raw plans always take the strided walk.
            identity: false,
        }
    }

    /// Cells of the big scope.
    pub(crate) fn big_cells(&self) -> usize {
        self.big_cells
    }

    /// Cells of the small scope.
    pub(crate) fn small_cells(&self) -> usize {
        self.small_cells
    }

    /// Whether the index map is the identity (small scope == big scope).
    pub(crate) fn is_identity(&self) -> bool {
        self.identity
    }

    /// Visit `(big_index, small_index)` for every big cell in ascending big
    /// order. Heap-free for ranks up to [`MAX_STACK_AXES`].
    #[inline]
    pub(crate) fn walk(&self, mut f: impl FnMut(usize, usize)) {
        let k = self.big_shape.len();
        if k <= MAX_STACK_AXES {
            let mut codes = [0usize; MAX_STACK_AXES];
            self.walk_with(&mut codes[..k], &mut f);
        } else {
            let mut codes = vec![0usize; k];
            self.walk_with(&mut codes, &mut f);
        }
    }

    #[inline]
    fn walk_with(&self, codes: &mut [usize], f: &mut impl FnMut(usize, usize)) {
        let k = codes.len();
        let mut small = 0usize;
        for big in 0..self.big_cells {
            f(big, small);
            for axis in (0..k).rev() {
                codes[axis] += 1;
                small += self.inc[axis];
                if codes[axis] < self.big_shape[axis] {
                    break;
                }
                codes[axis] = 0;
                small -= self.wrap[axis];
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Slice kernels. All iterate the big scope in ascending index order so the
// per-cell operation sequence matches the naive implementations exactly.
// ---------------------------------------------------------------------------

/// `dst[i] = src[plan(i)]` — broadcast copy (replication over absent axes).
pub(crate) fn bcast_assign(dst: &mut [f64], src: &[f64], plan: &StridePlan) {
    debug_assert_eq!(dst.len(), plan.big_cells);
    debug_assert_eq!(src.len(), plan.small_cells);
    if plan.identity {
        dst.copy_from_slice(src);
        return;
    }
    plan.walk(|big, small| dst[big] = src[small]);
}

/// `dst[i] += src[plan(i)]` — in-place log-space product.
pub(crate) fn bcast_add(dst: &mut [f64], src: &[f64], plan: &StridePlan) {
    debug_assert_eq!(dst.len(), plan.big_cells);
    debug_assert_eq!(src.len(), plan.small_cells);
    plan.walk(|big, small| dst[big] += src[small]);
}

/// In-place log-space division with the zero-mass convention:
/// `-inf / -inf := -inf` (zero over zero stays zero mass); division by zero
/// where mass exists yields `+inf`.
pub(crate) fn bcast_div(dst: &mut [f64], src: &[f64], plan: &StridePlan) {
    debug_assert_eq!(dst.len(), plan.big_cells);
    debug_assert_eq!(src.len(), plan.small_cells);
    plan.walk(|big, small| {
        let y = src[small];
        let x = &mut dst[big];
        if y.is_finite() {
            *x -= y;
        } else if x.is_finite() {
            *x = f64::INFINITY;
        }
    });
}

/// Pass 1 of strided marginalization: per-output-cell maximum (for the
/// numerical-stability shift). `maxes` must be pre-filled with `-inf`.
pub(crate) fn marg_max(src: &[f64], maxes: &mut [f64], plan: &StridePlan) {
    debug_assert_eq!(src.len(), plan.big_cells);
    debug_assert_eq!(maxes.len(), plan.small_cells);
    plan.walk(|big, small| {
        let lv = src[big];
        if lv > maxes[small] {
            maxes[small] = lv;
        }
    });
}

/// Pass 2: max-shifted sum of exponentials. `sums` must be pre-zeroed.
pub(crate) fn marg_sum(src: &[f64], maxes: &[f64], sums: &mut [f64], plan: &StridePlan) {
    debug_assert_eq!(src.len(), plan.big_cells);
    debug_assert_eq!(sums.len(), plan.small_cells);
    plan.walk(|big, small| {
        if maxes[small].is_finite() {
            sums[small] += (src[big] - maxes[small]).exp();
        }
    });
}

/// Finalize a strided marginalization into log space.
pub(crate) fn marg_finish(maxes: &[f64], sums: &[f64], out: &mut [f64]) {
    for ((&m, &s), o) in maxes.iter().zip(sums).zip(out.iter_mut()) {
        *o = if m.is_finite() && s > 0.0 {
            m + s.ln()
        } else {
            f64::NEG_INFINITY
        };
    }
}

/// Normalize a log-value table in place to log-probabilities; degenerate
/// tables (no finite mass, e.g. every cell `-inf`) fall back to uniform
/// instead of producing all-NaN from the `-inf - -inf` subtraction.
pub(crate) fn normalize_log_values(values: &mut [f64]) {
    let lse = log_sum_exp(values);
    if lse.is_finite() {
        values.iter_mut().for_each(|v| *v -= lse);
    } else {
        let u = -((values.len() as f64).ln());
        values.iter_mut().for_each(|v| *v = u);
    }
}

/// Write linear-space probabilities of a log-value table into `out`
/// (degenerate tables become uniform, mirroring [`normalize_log_values`]).
pub(crate) fn probabilities_into_slice(values: &[f64], out: &mut [f64]) {
    debug_assert_eq!(values.len(), out.len());
    let lse = log_sum_exp(values);
    if !lse.is_finite() {
        out.fill(1.0 / values.len() as f64);
        return;
    }
    for (o, &v) in out.iter_mut().zip(values) {
        *o = (v - lse).exp();
    }
}

/// A factor over sorted, distinct attribute indices of some global domain.
#[derive(Debug, PartialEq)]
pub struct Factor {
    attrs: Vec<usize>,
    shape: Vec<usize>,
    log_values: Vec<f64>,
}

impl Clone for Factor {
    fn clone(&self) -> Factor {
        note_buffer_alloc();
        Factor {
            attrs: self.attrs.clone(),
            shape: self.shape.clone(),
            log_values: self.log_values.clone(),
        }
    }
}

impl Factor {
    /// Uniform (all-zero log) factor.
    ///
    /// # Errors
    /// [`PgmError::UnsortedAttributes`] if `attrs` is not strictly ascending,
    /// or a shape/attr length mismatch.
    pub fn uniform(attrs: Vec<usize>, shape: Vec<usize>) -> Result<Factor> {
        Self::from_log_values(attrs, shape.clone(), vec![0.0; shape.iter().product()])
    }

    /// Build from explicit log values.
    pub fn from_log_values(
        attrs: Vec<usize>,
        shape: Vec<usize>,
        log_values: Vec<f64>,
    ) -> Result<Factor> {
        if attrs.len() != shape.len() {
            return Err(PgmError::ScopeMismatch);
        }
        if !attrs.windows(2).all(|w| w[0] < w[1]) {
            return Err(PgmError::UnsortedAttributes);
        }
        let cells: usize = shape.iter().product();
        if log_values.len() != cells {
            return Err(PgmError::ShapeMismatch {
                cells,
                values: log_values.len(),
            });
        }
        note_buffer_alloc();
        Ok(Factor {
            attrs,
            shape,
            log_values,
        })
    }

    /// Build from non-negative linear-space values (zeros become -inf).
    pub fn from_values(attrs: Vec<usize>, shape: Vec<usize>, values: &[f64]) -> Result<Factor> {
        let logs = values
            .iter()
            .map(|&v| if v > 0.0 { v.ln() } else { f64::NEG_INFINITY })
            .collect();
        Self::from_log_values(attrs, shape, logs)
    }

    /// Sorted global attribute ids in scope.
    pub fn attrs(&self) -> &[usize] {
        &self.attrs
    }

    /// Cardinalities per attribute.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Raw log values.
    pub fn log_values(&self) -> &[f64] {
        &self.log_values
    }

    /// Mutable raw log values.
    pub fn log_values_mut(&mut self) -> &mut [f64] {
        &mut self.log_values
    }

    /// Cell count.
    pub fn n_cells(&self) -> usize {
        self.log_values.len()
    }

    /// Overwrite this factor's values from another factor with the same
    /// scope (no allocation).
    pub fn copy_values_from(&mut self, other: &Factor) {
        debug_assert_eq!(self.attrs, other.attrs);
        self.log_values.copy_from_slice(&other.log_values);
    }

    /// log Σ exp(values) with max shift.
    pub fn log_sum_exp(&self) -> f64 {
        log_sum_exp(&self.log_values)
    }

    /// Normalize in place to a log-probability table. Degenerate tables
    /// (every cell `-inf`, so `log_sum_exp = -inf`) fall back to uniform
    /// rather than producing all-NaN via the `-inf` subtraction.
    pub fn normalize(&mut self) {
        normalize_log_values(&mut self.log_values);
    }

    /// Linear-space probabilities (normalized copy).
    pub fn probabilities(&self) -> Vec<f64> {
        let mut out = vec![0.0f64; self.n_cells()];
        probabilities_into_slice(&self.log_values, &mut out);
        out
    }

    /// Linear-space probabilities written into a caller-provided buffer
    /// (no allocation). `out.len()` must equal [`Factor::n_cells`].
    pub fn probabilities_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.n_cells(), "probability buffer size");
        probabilities_into_slice(&self.log_values, out);
    }

    /// In-place log-space product with a factor whose scope is contained in
    /// this one: `self[x] += other[x restricted]`, walking this factor once
    /// with a precomputed stride table. No union scope is materialized.
    ///
    /// # Errors
    /// [`PgmError::ScopeMismatch`] if `other.attrs ⊄ self.attrs`.
    pub fn mul_assign_broadcast(&mut self, other: &Factor) -> Result<()> {
        let plan = StridePlan::embed(&other.attrs, &other.shape, &self.attrs, &self.shape)?;
        bcast_add(&mut self.log_values, &other.log_values, &plan);
        Ok(())
    }

    /// In-place log-space division by a factor whose scope is contained in
    /// this one (zero-mass convention of [`Factor::divide`]).
    ///
    /// # Errors
    /// [`PgmError::ScopeMismatch`] if `other.attrs ⊄ self.attrs`.
    pub fn div_assign_broadcast(&mut self, other: &Factor) -> Result<()> {
        let plan = StridePlan::embed(&other.attrs, &other.shape, &self.attrs, &self.shape)?;
        bcast_div(&mut self.log_values, &other.log_values, &plan);
        Ok(())
    }

    /// Log-space product: scope is the union of both scopes. The result is
    /// assembled with one broadcast copy of `self` plus one broadcast add of
    /// `other` — per cell the same single `a + b` the naive
    /// expand-both-then-zip implementation performs.
    pub fn multiply(&self, other: &Factor) -> Result<Factor> {
        let (union_attrs, union_shape) = union_scope(self, other)?;
        let plan_a = StridePlan::embed(&self.attrs, &self.shape, &union_attrs, &union_shape)?;
        let plan_b = StridePlan::embed(&other.attrs, &other.shape, &union_attrs, &union_shape)?;
        let mut out = vec![0.0f64; plan_a.big_cells()];
        bcast_assign(&mut out, &self.log_values, &plan_a);
        bcast_add(&mut out, &other.log_values, &plan_b);
        Factor::from_log_values(union_attrs, union_shape, out)
    }

    /// Log-space division (used to form conditional distributions).
    /// `-inf / -inf := -inf` (zero over zero stays zero mass).
    ///
    /// # Errors
    /// [`PgmError::ScopeMismatch`] if `other.attrs ⊄ self.attrs`.
    pub fn divide(&self, other: &Factor) -> Result<Factor> {
        let mut out = self.clone();
        out.div_assign_broadcast(other)?;
        Ok(out)
    }

    /// Strided-marginalization plan from this factor's scope onto `keep`
    /// (in `keep` order; unsorted keeps are rejected later by factor
    /// construction, matching the historical behavior).
    fn keep_plan(&self, keep: &[usize]) -> Result<(StridePlan, Vec<usize>)> {
        let mut keep_pos = Vec::with_capacity(keep.len());
        for &k in keep {
            match self.attrs.iter().position(|&a| a == k) {
                Some(p) => keep_pos.push(p),
                None => return Err(PgmError::ScopeMismatch),
            }
        }
        let out_shape: Vec<usize> = keep_pos.iter().map(|&p| self.shape[p]).collect();
        let out_strides = strides_of(&out_shape);
        let mut inc = vec![0usize; self.shape.len()];
        for (k, &p) in keep_pos.iter().enumerate() {
            inc[p] = out_strides[k];
        }
        let plan = StridePlan::from_axis_strides(&self.shape, inc, out_shape.iter().product());
        Ok((plan, out_shape))
    }

    /// Marginalize onto a kept subset of global attribute ids (sorted),
    /// summing out the rest in linear space (max-shifted), in one strided
    /// walk per pass.
    pub fn marginalize_keep(&self, keep: &[usize]) -> Result<Factor> {
        if keep == self.attrs.as_slice() {
            return Ok(self.clone());
        }
        let (plan, out_shape) = self.keep_plan(keep)?;
        let out_cells = plan.small_cells();
        let mut maxes = vec![f64::NEG_INFINITY; out_cells];
        let mut sums = vec![0.0f64; out_cells];
        let mut out_logs = vec![0.0f64; out_cells];
        marg_max(&self.log_values, &mut maxes, &plan);
        marg_sum(&self.log_values, &maxes, &mut sums, &plan);
        marg_finish(&maxes, &sums, &mut out_logs);
        Factor::from_log_values(keep.to_vec(), out_shape, out_logs)
    }
}

// ---------------------------------------------------------------------------
// Naive reference implementations — the differential-testing oracle.
//
// These are the original expand-then-zip versions the stride kernels
// replaced. They stay compiled under test builds and the `naive-reference`
// feature so the proptests in `tests/factor_equivalence.rs` (and the
// before/after benches) can assert the kernels agree bit-for-bit.
// ---------------------------------------------------------------------------

#[cfg(any(test, feature = "naive-reference"))]
impl Factor {
    /// Expand onto a superset scope `target` (sorted) with `target_shape`.
    /// Cells are replicated over the new axes.
    ///
    /// # Errors
    /// [`PgmError::ScopeMismatch`] if `self.attrs ⊄ target`.
    pub fn expand(&self, target: &[usize], target_shape: &[usize]) -> Result<Factor> {
        if self.attrs == target {
            return Ok(self.clone());
        }
        // Positions of self.attrs within target.
        let mut positions = Vec::with_capacity(self.attrs.len());
        {
            let mut ti = 0usize;
            for (&a, &card) in self.attrs.iter().zip(&self.shape) {
                while ti < target.len() && target[ti] < a {
                    ti += 1;
                }
                if ti >= target.len() || target[ti] != a || target_shape[ti] != card {
                    return Err(PgmError::ScopeMismatch);
                }
                positions.push(ti);
            }
        }
        let src_strides = strides_of(&self.shape);
        let cells: usize = target_shape.iter().product();
        let mut out = vec![0.0f64; cells];
        // Incremental mixed-radix counter over the target cells, with the
        // per-cell linear position scan the stride kernels eliminate.
        let mut codes = vec![0usize; target.len()];
        let mut src_idx = 0usize;
        for slot in out.iter_mut() {
            *slot = self.log_values[src_idx];
            for axis in (0..target.len()).rev() {
                codes[axis] += 1;
                if let Some(pos) = positions.iter().position(|&p| p == axis) {
                    src_idx += src_strides[pos];
                }
                if codes[axis] < target_shape[axis] {
                    break;
                }
                codes[axis] = 0;
                if let Some(pos) = positions.iter().position(|&p| p == axis) {
                    src_idx -= src_strides[pos] * self.shape[pos];
                }
            }
        }
        Factor::from_log_values(target.to_vec(), target_shape.to_vec(), out)
    }

    /// Original `multiply`: expand both operands onto the union, then zip.
    pub fn naive_multiply(&self, other: &Factor) -> Result<Factor> {
        let (union_attrs, union_shape) = union_scope(self, other)?;
        let mut a = self.expand(&union_attrs, &union_shape)?;
        let b = other.expand(&union_attrs, &union_shape)?;
        for (x, y) in a.log_values.iter_mut().zip(b.log_values) {
            *x += y;
        }
        Ok(a)
    }

    /// Original `divide`: expand the divisor onto this scope, then zip.
    pub fn naive_divide(&self, other: &Factor) -> Result<Factor> {
        let b = other.expand(&self.attrs, &self.shape)?;
        let mut out = self.clone();
        for (x, y) in out.log_values.iter_mut().zip(b.log_values) {
            // -inf / -inf := -inf (zero over zero stays zero mass).
            if y.is_finite() {
                *x -= y;
            } else if x.is_finite() {
                *x = f64::INFINITY; // division by zero where mass exists
            }
        }
        Ok(out)
    }

    /// Original `marginalize_keep`: per-cell division/modulo index mapping.
    pub fn naive_marginalize_keep(&self, keep: &[usize]) -> Result<Factor> {
        if keep == self.attrs.as_slice() {
            return Ok(self.clone());
        }
        let mut keep_pos = Vec::with_capacity(keep.len());
        for &k in keep {
            match self.attrs.iter().position(|&a| a == k) {
                Some(p) => keep_pos.push(p),
                None => return Err(PgmError::ScopeMismatch),
            }
        }
        let out_shape: Vec<usize> = keep_pos.iter().map(|&p| self.shape[p]).collect();
        let out_strides = strides_of(&out_shape);
        let out_cells: usize = out_shape.iter().product();

        // Pass 1: per-output-cell max for numerical stability.
        let mut maxes = vec![f64::NEG_INFINITY; out_cells];
        let mut sums = vec![0.0f64; out_cells];
        let src_strides = strides_of(&self.shape);
        let map_index = |idx: usize| -> usize {
            let mut out_idx = 0usize;
            for (k, &p) in keep_pos.iter().enumerate() {
                let code = (idx / src_strides[p]) % self.shape[p];
                out_idx += code * out_strides[k];
            }
            out_idx
        };
        for (idx, &lv) in self.log_values.iter().enumerate() {
            let o = map_index(idx);
            if lv > maxes[o] {
                maxes[o] = lv;
            }
        }
        for (idx, &lv) in self.log_values.iter().enumerate() {
            let o = map_index(idx);
            if maxes[o].is_finite() {
                sums[o] += (lv - maxes[o]).exp();
            }
        }
        let out_logs = maxes
            .iter()
            .zip(&sums)
            .map(|(&m, &s)| {
                if m.is_finite() && s > 0.0 {
                    m + s.ln()
                } else {
                    f64::NEG_INFINITY
                }
            })
            .collect();
        Factor::from_log_values(keep.to_vec(), out_shape, out_logs)
    }
}

/// Union of two factor scopes with consistent cardinalities.
fn union_scope(a: &Factor, b: &Factor) -> Result<(Vec<usize>, Vec<usize>)> {
    let mut attrs = Vec::with_capacity(a.attrs.len() + b.attrs.len());
    let mut shape = Vec::with_capacity(attrs.capacity());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.attrs.len() || j < b.attrs.len() {
        let take_a = j >= b.attrs.len() || (i < a.attrs.len() && a.attrs[i] <= b.attrs[j]);
        if take_a {
            if j < b.attrs.len() && i < a.attrs.len() && a.attrs[i] == b.attrs[j] {
                if a.shape[i] != b.shape[j] {
                    return Err(PgmError::ScopeMismatch);
                }
                j += 1;
            }
            attrs.push(a.attrs[i]);
            shape.push(a.shape[i]);
            i += 1;
        } else {
            attrs.push(b.attrs[j]);
            shape.push(b.shape[j]);
            j += 1;
        }
    }
    Ok((attrs, shape))
}

/// Max-shifted log-sum-exp of a slice.
pub fn log_sum_exp(values: &[f64]) -> f64 {
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    max + values.iter().map(|v| (v - max).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn factor(attrs: Vec<usize>, shape: Vec<usize>, vals: Vec<f64>) -> Factor {
        Factor::from_values(attrs, shape, &vals).unwrap()
    }

    #[test]
    fn expand_replicates_over_new_axes() {
        // f(b) over attr 1 expanded to (a=0, b=1).
        let f = factor(vec![1], vec![3], vec![1.0, 2.0, 3.0]);
        let e = f.expand(&[0, 1], &[2, 3]).unwrap();
        let p: Vec<f64> = e.log_values().iter().map(|v| v.exp()).collect();
        assert_eq!(p.len(), 6);
        for row in 0..2 {
            for col in 0..3 {
                assert!((p[row * 3 + col] - (col + 1) as f64).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn multiply_matches_manual_product() {
        let fa = factor(vec![0], vec![2], vec![0.25, 0.75]);
        let fb = factor(vec![1], vec![2], vec![0.5, 0.5]);
        let joint = fa.multiply(&fb).unwrap();
        let p = joint.probabilities();
        assert!((p[0] - 0.125).abs() < 1e-12); // 0.25 * 0.5
        assert!((p[3] - 0.375).abs() < 1e-12); // 0.75 * 0.5
    }

    #[test]
    fn mul_assign_broadcast_matches_multiply() {
        let big = factor(
            vec![0, 1, 2],
            vec![2, 3, 2],
            (1..=12).map(f64::from).collect(),
        );
        let small = factor(vec![0, 2], vec![2, 2], vec![0.5, 1.0, 2.0, 4.0]);
        let via_multiply = big.multiply(&small).unwrap();
        let mut in_place = big.clone();
        in_place.mul_assign_broadcast(&small).unwrap();
        assert_eq!(in_place, via_multiply);
        // A non-subset operand is rejected.
        let outside = factor(vec![3], vec![2], vec![1.0, 1.0]);
        assert!(in_place.mul_assign_broadcast(&outside).is_err());
    }

    #[test]
    fn marginalize_inverts_expand() {
        let f = factor(vec![0, 2], vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let m = f.marginalize_keep(&[0]).unwrap();
        let vals: Vec<f64> = m.log_values().iter().map(|v| v.exp()).collect();
        assert!((vals[0] - 6.0).abs() < 1e-9);
        assert!((vals[1] - 15.0).abs() < 1e-9);
        // Keep both -> identity.
        assert_eq!(f.marginalize_keep(&[0, 2]).unwrap(), f);
    }

    #[test]
    fn marginalize_then_multiply_consistency() {
        // p(a,b) -> p(a) * p(b|a)-free check: sum of joint equals sum of marginal.
        let f = factor(vec![0, 1], vec![2, 2], vec![0.1, 0.2, 0.3, 0.4]);
        let ma = f.marginalize_keep(&[0]).unwrap();
        assert!((ma.log_sum_exp() - f.log_sum_exp()).abs() < 1e-12);
    }

    #[test]
    fn normalize_handles_degenerate() {
        let mut f = Factor::from_log_values(vec![0], vec![3], vec![f64::NEG_INFINITY; 3]).unwrap();
        f.normalize();
        let p = f.probabilities();
        assert!((p[0] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_all_neg_inf_degrades_to_uniform_not_nan() {
        // log_sum_exp = -inf; the -inf - -inf subtraction would be NaN.
        for cells in [1usize, 2, 6] {
            let mut f =
                Factor::from_log_values(vec![0], vec![cells], vec![f64::NEG_INFINITY; cells])
                    .unwrap();
            f.normalize();
            for &v in f.log_values() {
                assert!(!v.is_nan(), "normalize produced NaN for {cells} cells");
                assert!((v - (-(cells as f64).ln())).abs() < 1e-12);
            }
            let p = f.probabilities();
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normalize_partial_neg_inf_keeps_zero_mass() {
        // A mixed table must keep its -inf cells at zero probability.
        let mut f =
            Factor::from_log_values(vec![0], vec![3], vec![0.0, f64::NEG_INFINITY, 0.0]).unwrap();
        f.normalize();
        let p = f.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert_eq!(p[1], 0.0);
        assert!(f.log_values().iter().all(|v| !v.is_nan()));
    }

    #[test]
    fn probabilities_into_matches_probabilities() {
        let f = factor(vec![0, 1], vec![2, 2], vec![0.1, 0.2, 0.3, 0.4]);
        let mut buf = vec![0.0; 4];
        f.probabilities_into(&mut buf);
        assert_eq!(buf, f.probabilities());
        // Degenerate input through the buffer path too.
        let g = Factor::from_log_values(vec![0], vec![4], vec![f64::NEG_INFINITY; 4]).unwrap();
        let mut buf = vec![0.0; 4];
        g.probabilities_into(&mut buf);
        assert!(buf.iter().all(|&p| (p - 0.25).abs() < 1e-12));
    }

    #[test]
    fn scope_errors() {
        let f = factor(vec![0], vec![2], vec![1.0, 1.0]);
        assert!(f.expand(&[1], &[2]).is_err());
        assert!(f.marginalize_keep(&[1]).is_err());
        assert!(Factor::uniform(vec![1, 0], vec![2, 2]).is_err());
        assert!(Factor::uniform(vec![0, 0], vec![2, 2]).is_err());
    }

    #[test]
    fn divide_forms_conditionals() {
        let joint = factor(vec![0, 1], vec![2, 2], vec![0.1, 0.3, 0.2, 0.4]);
        let marg = joint.marginalize_keep(&[0]).unwrap();
        let cond = joint.divide(&marg).unwrap();
        let p: Vec<f64> = cond.log_values().iter().map(|v| v.exp()).collect();
        // p(b|a=0) = [0.25, 0.75].
        assert!((p[0] - 0.25).abs() < 1e-9);
        assert!((p[1] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn alloc_counter_tracks_construction_and_clone() {
        let before = factor_buffer_allocs();
        let f = factor(vec![0], vec![2], vec![1.0, 1.0]);
        let _g = f.clone();
        assert!(factor_buffer_allocs() >= before + 2);
    }
}
