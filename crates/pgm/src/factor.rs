//! Log-space factors over subsets of a discrete domain.
//!
//! A [`Factor`] stores log-potentials (or log-probabilities) over the cells
//! of an attribute subset, laid out row-major in ascending attribute order.
//! Products are additions in log space; marginalization uses a max-shifted
//! sum-exp per output cell, so calibration stays stable for the very peaked
//! potentials mirror descent produces at low noise.

use crate::error::{PgmError, Result};

/// Row-major strides for a shape.
pub(crate) fn strides_of(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

/// A factor over sorted, distinct attribute indices of some global domain.
#[derive(Debug, Clone, PartialEq)]
pub struct Factor {
    attrs: Vec<usize>,
    shape: Vec<usize>,
    log_values: Vec<f64>,
}

impl Factor {
    /// Uniform (all-zero log) factor.
    ///
    /// # Errors
    /// [`PgmError::UnsortedAttributes`] if `attrs` is not strictly ascending,
    /// or a shape/attr length mismatch.
    pub fn uniform(attrs: Vec<usize>, shape: Vec<usize>) -> Result<Factor> {
        Self::from_log_values(attrs, shape.clone(), vec![0.0; shape.iter().product()])
    }

    /// Build from explicit log values.
    pub fn from_log_values(
        attrs: Vec<usize>,
        shape: Vec<usize>,
        log_values: Vec<f64>,
    ) -> Result<Factor> {
        if attrs.len() != shape.len() {
            return Err(PgmError::ScopeMismatch);
        }
        if !attrs.windows(2).all(|w| w[0] < w[1]) {
            return Err(PgmError::UnsortedAttributes);
        }
        let cells: usize = shape.iter().product();
        if log_values.len() != cells {
            return Err(PgmError::ShapeMismatch {
                cells,
                values: log_values.len(),
            });
        }
        Ok(Factor {
            attrs,
            shape,
            log_values,
        })
    }

    /// Build from non-negative linear-space values (zeros become -inf).
    pub fn from_values(attrs: Vec<usize>, shape: Vec<usize>, values: &[f64]) -> Result<Factor> {
        let logs = values
            .iter()
            .map(|&v| if v > 0.0 { v.ln() } else { f64::NEG_INFINITY })
            .collect();
        Self::from_log_values(attrs, shape, logs)
    }

    /// Sorted global attribute ids in scope.
    pub fn attrs(&self) -> &[usize] {
        &self.attrs
    }

    /// Cardinalities per attribute.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Raw log values.
    pub fn log_values(&self) -> &[f64] {
        &self.log_values
    }

    /// Mutable raw log values.
    pub fn log_values_mut(&mut self) -> &mut [f64] {
        &mut self.log_values
    }

    /// Cell count.
    pub fn n_cells(&self) -> usize {
        self.log_values.len()
    }

    /// log Σ exp(values) with max shift.
    pub fn log_sum_exp(&self) -> f64 {
        log_sum_exp(&self.log_values)
    }

    /// Normalize in place to a log-probability table.
    pub fn normalize(&mut self) {
        let lse = self.log_sum_exp();
        if lse.is_finite() {
            self.log_values.iter_mut().for_each(|v| *v -= lse);
        } else {
            // Degenerate (all -inf): fall back to uniform.
            let u = -((self.n_cells() as f64).ln());
            self.log_values.iter_mut().for_each(|v| *v = u);
        }
    }

    /// Linear-space probabilities (normalized copy).
    pub fn probabilities(&self) -> Vec<f64> {
        let lse = self.log_sum_exp();
        if !lse.is_finite() {
            return vec![1.0 / self.n_cells() as f64; self.n_cells()];
        }
        self.log_values.iter().map(|&v| (v - lse).exp()).collect()
    }

    /// Expand onto a superset scope `target` (sorted) with `target_shape`.
    /// Cells are replicated over the new axes.
    ///
    /// # Errors
    /// [`PgmError::ScopeMismatch`] if `self.attrs ⊄ target`.
    pub fn expand(&self, target: &[usize], target_shape: &[usize]) -> Result<Factor> {
        if self.attrs == target {
            return Ok(self.clone());
        }
        // Positions of self.attrs within target.
        let mut positions = Vec::with_capacity(self.attrs.len());
        {
            let mut ti = 0usize;
            for (&a, &card) in self.attrs.iter().zip(&self.shape) {
                while ti < target.len() && target[ti] < a {
                    ti += 1;
                }
                if ti >= target.len() || target[ti] != a || target_shape[ti] != card {
                    return Err(PgmError::ScopeMismatch);
                }
                positions.push(ti);
            }
        }
        let src_strides = strides_of(&self.shape);
        let cells: usize = target_shape.iter().product();
        let mut out = vec![0.0f64; cells];
        // Incremental mixed-radix counter over the target cells.
        let mut codes = vec![0usize; target.len()];
        let mut src_idx = 0usize;
        for slot in out.iter_mut() {
            *slot = self.log_values[src_idx];
            // Increment the counter (last axis fastest) and patch src_idx.
            for axis in (0..target.len()).rev() {
                codes[axis] += 1;
                if let Some(pos) = positions.iter().position(|&p| p == axis) {
                    src_idx += src_strides[pos];
                }
                if codes[axis] < target_shape[axis] {
                    break;
                }
                codes[axis] = 0;
                if let Some(pos) = positions.iter().position(|&p| p == axis) {
                    src_idx -= src_strides[pos] * self.shape[pos];
                }
            }
        }
        Factor::from_log_values(target.to_vec(), target_shape.to_vec(), out)
    }

    /// Log-space product: scope is the union of both scopes.
    pub fn multiply(&self, other: &Factor) -> Result<Factor> {
        let (union_attrs, union_shape) = union_scope(self, other)?;
        let mut a = self.expand(&union_attrs, &union_shape)?;
        let b = other.expand(&union_attrs, &union_shape)?;
        for (x, y) in a.log_values.iter_mut().zip(b.log_values) {
            *x += y;
        }
        Ok(a)
    }

    /// Log-space division (used to form conditional distributions).
    pub fn divide(&self, other: &Factor) -> Result<Factor> {
        let b = other.expand(&self.attrs, &self.shape)?;
        let mut out = self.clone();
        for (x, y) in out.log_values.iter_mut().zip(b.log_values) {
            // -inf / -inf := -inf (zero over zero stays zero mass).
            if y.is_finite() {
                *x -= y;
            } else if x.is_finite() {
                *x = f64::INFINITY; // division by zero where mass exists
            }
        }
        Ok(out)
    }

    /// Marginalize onto a kept subset of global attribute ids (sorted),
    /// summing out the rest in linear space (max-shifted).
    pub fn marginalize_keep(&self, keep: &[usize]) -> Result<Factor> {
        if keep == self.attrs.as_slice() {
            return Ok(self.clone());
        }
        let mut keep_pos = Vec::with_capacity(keep.len());
        for &k in keep {
            match self.attrs.iter().position(|&a| a == k) {
                Some(p) => keep_pos.push(p),
                None => return Err(PgmError::ScopeMismatch),
            }
        }
        let out_shape: Vec<usize> = keep_pos.iter().map(|&p| self.shape[p]).collect();
        let out_strides = strides_of(&out_shape);
        let out_cells: usize = out_shape.iter().product();

        // Pass 1: per-output-cell max for numerical stability.
        let mut maxes = vec![f64::NEG_INFINITY; out_cells];
        let mut sums = vec![0.0f64; out_cells];
        let src_strides = strides_of(&self.shape);
        let map_index = |idx: usize| -> usize {
            let mut out_idx = 0usize;
            for (k, &p) in keep_pos.iter().enumerate() {
                let code = (idx / src_strides[p]) % self.shape[p];
                out_idx += code * out_strides[k];
            }
            out_idx
        };
        for (idx, &lv) in self.log_values.iter().enumerate() {
            let o = map_index(idx);
            if lv > maxes[o] {
                maxes[o] = lv;
            }
        }
        for (idx, &lv) in self.log_values.iter().enumerate() {
            let o = map_index(idx);
            if maxes[o].is_finite() {
                sums[o] += (lv - maxes[o]).exp();
            }
        }
        let out_logs = maxes
            .iter()
            .zip(&sums)
            .map(|(&m, &s)| {
                if m.is_finite() && s > 0.0 {
                    m + s.ln()
                } else {
                    f64::NEG_INFINITY
                }
            })
            .collect();
        Factor::from_log_values(keep.to_vec(), out_shape, out_logs)
    }
}

/// Union of two factor scopes with consistent cardinalities.
fn union_scope(a: &Factor, b: &Factor) -> Result<(Vec<usize>, Vec<usize>)> {
    let mut attrs = Vec::with_capacity(a.attrs.len() + b.attrs.len());
    let mut shape = Vec::with_capacity(attrs.capacity());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.attrs.len() || j < b.attrs.len() {
        let take_a = j >= b.attrs.len() || (i < a.attrs.len() && a.attrs[i] <= b.attrs[j]);
        if take_a {
            if j < b.attrs.len() && i < a.attrs.len() && a.attrs[i] == b.attrs[j] {
                if a.shape[i] != b.shape[j] {
                    return Err(PgmError::ScopeMismatch);
                }
                j += 1;
            }
            attrs.push(a.attrs[i]);
            shape.push(a.shape[i]);
            i += 1;
        } else {
            attrs.push(b.attrs[j]);
            shape.push(b.shape[j]);
            j += 1;
        }
    }
    Ok((attrs, shape))
}

/// Max-shifted log-sum-exp of a slice.
pub fn log_sum_exp(values: &[f64]) -> f64 {
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    max + values.iter().map(|v| (v - max).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn factor(attrs: Vec<usize>, shape: Vec<usize>, vals: Vec<f64>) -> Factor {
        Factor::from_values(attrs, shape, &vals).unwrap()
    }

    #[test]
    fn expand_replicates_over_new_axes() {
        // f(b) over attr 1 expanded to (a=0, b=1).
        let f = factor(vec![1], vec![3], vec![1.0, 2.0, 3.0]);
        let e = f.expand(&[0, 1], &[2, 3]).unwrap();
        let p: Vec<f64> = e.log_values().iter().map(|v| v.exp()).collect();
        assert_eq!(p.len(), 6);
        for row in 0..2 {
            for col in 0..3 {
                assert!((p[row * 3 + col] - (col + 1) as f64).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn multiply_matches_manual_product() {
        let fa = factor(vec![0], vec![2], vec![0.25, 0.75]);
        let fb = factor(vec![1], vec![2], vec![0.5, 0.5]);
        let joint = fa.multiply(&fb).unwrap();
        let p = joint.probabilities();
        assert!((p[0] - 0.125).abs() < 1e-12); // 0.25 * 0.5
        assert!((p[3] - 0.375).abs() < 1e-12); // 0.75 * 0.5
    }

    #[test]
    fn marginalize_inverts_expand() {
        let f = factor(vec![0, 2], vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let m = f.marginalize_keep(&[0]).unwrap();
        let vals: Vec<f64> = m.log_values().iter().map(|v| v.exp()).collect();
        assert!((vals[0] - 6.0).abs() < 1e-9);
        assert!((vals[1] - 15.0).abs() < 1e-9);
        // Keep both -> identity.
        assert_eq!(f.marginalize_keep(&[0, 2]).unwrap(), f);
    }

    #[test]
    fn marginalize_then_multiply_consistency() {
        // p(a,b) -> p(a) * p(b|a)-free check: sum of joint equals sum of marginal.
        let f = factor(vec![0, 1], vec![2, 2], vec![0.1, 0.2, 0.3, 0.4]);
        let ma = f.marginalize_keep(&[0]).unwrap();
        assert!((ma.log_sum_exp() - f.log_sum_exp()).abs() < 1e-12);
    }

    #[test]
    fn normalize_handles_degenerate() {
        let mut f = Factor::from_log_values(vec![0], vec![3], vec![f64::NEG_INFINITY; 3]).unwrap();
        f.normalize();
        let p = f.probabilities();
        assert!((p[0] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn scope_errors() {
        let f = factor(vec![0], vec![2], vec![1.0, 1.0]);
        assert!(f.expand(&[1], &[2]).is_err());
        assert!(f.marginalize_keep(&[1]).is_err());
        assert!(Factor::uniform(vec![1, 0], vec![2, 2]).is_err());
        assert!(Factor::uniform(vec![0, 0], vec![2, 2]).is_err());
    }

    #[test]
    fn divide_forms_conditionals() {
        let joint = factor(vec![0, 1], vec![2, 2], vec![0.1, 0.3, 0.2, 0.4]);
        let marg = joint.marginalize_keep(&[0]).unwrap();
        let cond = joint.divide(&marg).unwrap();
        let p: Vec<f64> = cond.log_values().iter().map(|v| v.exp()).collect();
        // p(b|a=0) = [0.25, 0.75].
        assert!((p[0] - 0.25).abs() < 1e-9);
        assert!((p[1] - 0.75).abs() < 1e-9);
    }
}
