//! Differential proptests: the stride-based factor kernels must agree
//! **bit-for-bit** with the retained naive reference implementations
//! (`naive-reference` feature) on random scopes, shapes and log-values —
//! including `±inf`, `±0.0` and NaN cells, where IEEE-754 special-case
//! propagation makes "almost equal" meaningless.
//!
//! Bitwise equality is the contract that makes the persistent result store
//! and the golden report digests survive kernel rewrites.

use proptest::prelude::*;
use synrd_pgm::Factor;

/// Bit-exact comparison (NaN == NaN iff same payload; -0.0 != +0.0).
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn factor_bits_eq(got: &Factor, want: &Factor) -> std::result::Result<(), String> {
    if got.attrs() != want.attrs() || got.shape() != want.shape() {
        return Err(format!(
            "scope diverged: {:?}{:?} vs {:?}{:?}",
            got.attrs(),
            got.shape(),
            want.attrs(),
            want.shape()
        ));
    }
    if !bits_eq(got.log_values(), want.log_values()) {
        return Err(format!(
            "values diverged\n  stride: {:?}\n  naive:  {:?}",
            got.log_values(),
            want.log_values()
        ));
    }
    Ok(())
}

/// A log-value including the special cells the hot path produces.
fn log_value() -> impl Strategy<Value = f64> {
    (0u8..=9, -50.0f64..50.0).prop_map(|(kind, v)| match kind {
        0 => f64::NEG_INFINITY,
        1 => f64::INFINITY,
        2 => f64::NAN,
        3 => -0.0,
        4 => 0.0,
        _ => v,
    })
}

/// Sorted attribute subset from a 0/1 mask (never empty: attr 0 fallback).
fn pick(mask: &[u8]) -> Vec<usize> {
    let v: Vec<usize> = mask
        .iter()
        .enumerate()
        .filter_map(|(i, &m)| (m == 1).then_some(i))
        .collect();
    if v.is_empty() {
        vec![0]
    } else {
        v
    }
}

fn factor_over(shape: &[usize], attrs: Vec<usize>) -> impl Strategy<Value = Factor> {
    let fshape: Vec<usize> = attrs.iter().map(|&a| shape[a]).collect();
    let cells: usize = fshape.iter().product();
    proptest::collection::vec(log_value(), cells..=cells)
        .prop_map(move |vals| Factor::from_log_values(attrs.clone(), fshape.clone(), vals).unwrap())
}

/// Two factors over random sorted subsets of a random domain (cardinality 1
/// axes included, to exercise degenerate strides).
fn factor_pair() -> impl Strategy<Value = (Factor, Factor)> {
    proptest::collection::vec(1usize..=4, 2..=6).prop_flat_map(|shape| {
        let d = shape.len();
        (
            Just(shape),
            proptest::collection::vec(0u8..=1, d..=d),
            proptest::collection::vec(0u8..=1, d..=d),
        )
            .prop_flat_map(|(shape, ma, mb)| {
                let fa = factor_over(&shape, pick(&ma));
                let fb = factor_over(&shape, pick(&mb));
                (fa, fb)
            })
    })
}

/// A factor plus a second factor whose scope is a subset of the first's
/// (the in-place broadcast precondition).
fn factor_with_sub() -> impl Strategy<Value = (Factor, Factor)> {
    proptest::collection::vec(1usize..=4, 2..=6).prop_flat_map(|shape| {
        let d = shape.len();
        (
            Just(shape),
            proptest::collection::vec(0u8..=1, d..=d),
            proptest::collection::vec(0u8..=1, d..=d),
        )
            .prop_flat_map(|(shape, ma, msub)| {
                let a = pick(&ma);
                let sub: Vec<usize> = a
                    .iter()
                    .copied()
                    .filter(|&x| msub.get(x).copied().unwrap_or(0) == 1)
                    .collect();
                let sub = if sub.is_empty() { vec![a[0]] } else { sub };
                let fa = factor_over(&shape, a);
                let fsub = factor_over(&shape, sub);
                (fa, fsub)
            })
    })
}

proptest! {
    /// `multiply` (broadcast assemble) ≡ `naive_multiply` (expand + zip).
    #[test]
    fn multiply_is_bit_identical((fa, fb) in factor_pair()) {
        let stride = fa.multiply(&fb).unwrap();
        let naive = fa.naive_multiply(&fb).unwrap();
        prop_assert!(
            factor_bits_eq(&stride, &naive).is_ok(),
            "multiply {:?}x{:?}: {}",
            fa.attrs(), fb.attrs(), factor_bits_eq(&stride, &naive).unwrap_err()
        );
    }

    /// In-place broadcast product ≡ `naive_multiply` when `other ⊆ self`.
    #[test]
    fn mul_assign_broadcast_is_bit_identical((fa, fsub) in factor_with_sub()) {
        let naive = fa.naive_multiply(&fsub).unwrap();
        let mut in_place = fa.clone();
        in_place.mul_assign_broadcast(&fsub).unwrap();
        prop_assert!(
            factor_bits_eq(&in_place, &naive).is_ok(),
            "mul_assign {:?}x{:?}: {}",
            fa.attrs(), fsub.attrs(), factor_bits_eq(&in_place, &naive).unwrap_err()
        );
    }

    /// `divide` ≡ `naive_divide` (divisor scope ⊆ dividend scope), with the
    /// full -inf / +inf / NaN special-case propagation.
    #[test]
    fn divide_is_bit_identical((fa, fsub) in factor_with_sub()) {
        let stride = fa.divide(&fsub).unwrap();
        let naive = fa.naive_divide(&fsub).unwrap();
        prop_assert!(
            factor_bits_eq(&stride, &naive).is_ok(),
            "divide {:?}/{:?}: {}",
            fa.attrs(), fsub.attrs(), factor_bits_eq(&stride, &naive).unwrap_err()
        );
    }

    /// `marginalize_keep` ≡ `naive_marginalize_keep` on random kept subsets
    /// (max-shifted sums hit the ±inf and NaN finalization branches).
    #[test]
    fn marginalize_is_bit_identical((fa, fsub) in factor_with_sub()) {
        let keep = fsub.attrs();
        let stride = fa.marginalize_keep(keep).unwrap();
        let naive = fa.naive_marginalize_keep(keep).unwrap();
        prop_assert!(
            factor_bits_eq(&stride, &naive).is_ok(),
            "marginalize {:?} keep {:?}: {}",
            fa.attrs(), keep, factor_bits_eq(&stride, &naive).unwrap_err()
        );
    }

    /// Scope errors agree between the two paths on arbitrary scope pairs.
    #[test]
    fn scope_errors_agree((fa, fb) in factor_pair()) {
        prop_assert_eq!(fa.divide(&fb).is_err(), fa.naive_divide(&fb).is_err());
        prop_assert_eq!(
            fa.marginalize_keep(fb.attrs()).is_err(),
            fa.naive_marginalize_keep(fb.attrs()).is_err()
        );
    }
}
