//! Differential proptests pinning the batched clique-major sampler against
//! the retained per-row oracle (`naive-reference` feature): bit-identity of
//! the sampled codes on random junction trees — including cardinality-1
//! attributes, all-zero-mass separator groups (the uniform-fallback path)
//! and `n = 0` rows — plus chunk-parallel vs sequential bit-identity,
//! mirroring `crates/data/tests/engine_equivalence.rs` on the counting side.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::ThreadPoolBuilder;
use synrd_pgm::{
    estimate, EstimationOptions, JunctionTree, NoisyMeasurement, SamplingWorkspace, TreeSampler,
};

/// A random domain (including cardinality-1 attributes), random pair/triple
/// attribute sets over it, and a pool of raw probability mass values with a
/// hard zero for every fifth-ish cell (so whole separator configurations
/// land on zero mass and exercise the uniform fallback).
fn random_problem() -> impl Strategy<Value = (Vec<usize>, Vec<Vec<usize>>, Vec<f64>)> {
    proptest::collection::vec(1usize..=4, 3..=7).prop_flat_map(|shape| {
        (
            Just(shape),
            proptest::collection::vec((0usize..100, 0usize..100, 0usize..100), 1..=8),
            proptest::collection::vec(
                (0u8..=4, 0.0f64..3.0).prop_map(|(k, v)| if k == 0 { 0.0 } else { v }),
                2048..=2048,
            ),
        )
            .prop_map(|(shape, seeds, vals)| {
                let d = shape.len();
                let sets: Vec<Vec<usize>> = seeds
                    .iter()
                    .map(|&(a, b, c)| {
                        let mut v = vec![a % d, b % d, c % d];
                        v.sort_unstable();
                        v.dedup();
                        v
                    })
                    .collect();
                (shape, sets, vals)
            })
    })
}

/// Raw per-clique probability tables carved out of the value pool. Entire
/// separator groups go to zero whenever the pool's zero runs line up, which
/// is exactly the degenerate case `from_probabilities` exists to inject.
fn tables_for(tree: &JunctionTree, pool: &[f64]) -> Vec<Vec<f64>> {
    let mut offset = 0usize;
    tree.cliques()
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let cells: usize = tree.clique_shape(i).iter().product();
            let vals: Vec<f64> = (0..cells)
                .map(|k| pool[(offset + k) % pool.len()])
                .collect();
            offset += cells;
            vals
        })
        .collect()
}

proptest! {
    /// Batched clique-major sampling ≡ the per-row oracle, bit for bit, on
    /// random junction trees with raw (partially zero-mass) probability
    /// tables, for every row count including zero.
    #[test]
    fn batched_matches_naive_bitwise(
        (shape, sets, vals) in random_problem(),
        n in 0usize..=200,
        seed in 0u64..1_000,
    ) {
        let tree = JunctionTree::build(&shape, &sets, 1 << 16).unwrap();
        let sampler = TreeSampler::from_probabilities(&tree, &tables_for(&tree, &vals)).unwrap();
        let batched = sampler.sample_columns(n, &mut StdRng::seed_from_u64(seed));
        let naive = sampler.sample_columns_naive(n, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(batched, naive);
    }

    /// Chunk-parallel sampling is bit-identical to the sequential pass:
    /// chunks index the shared pre-drawn uniform buffer by integer row
    /// index, so stitching their blocks in chunk order cannot differ from
    /// one sequential sweep, whatever the chunking or thread count.
    #[test]
    fn parallel_sampling_is_bit_identical(
        (shape, sets, vals) in random_problem(),
        n in 0usize..=300,
        seed in 0u64..1_000,
        chunk in 1usize..=64,
        threads in 2usize..=8,
    ) {
        let tree = JunctionTree::build(&shape, &sets, 1 << 16).unwrap();
        let sampler = TreeSampler::from_probabilities(&tree, &tables_for(&tree, &vals)).unwrap();
        let mut ws = SamplingWorkspace::new();
        let sequential =
            sampler.sample_columns_with(n, &mut StdRng::seed_from_u64(seed), &mut ws);
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let chunked = pool.install(|| {
            sampler.sample_columns_chunked(n, &mut StdRng::seed_from_u64(seed), chunk)
        });
        prop_assert_eq!(sequential, chunked);
    }

    /// Workspace reuse across calls never changes the sampled codes: a
    /// fresh-workspace call and a reused-workspace call agree bit for bit.
    #[test]
    fn workspace_reuse_is_transparent(
        (shape, sets, vals) in random_problem(),
        n in 0usize..=120,
        seed in 0u64..1_000,
    ) {
        let tree = JunctionTree::build(&shape, &sets, 1 << 16).unwrap();
        let sampler = TreeSampler::from_probabilities(&tree, &tables_for(&tree, &vals)).unwrap();
        let mut ws = SamplingWorkspace::new();
        // Dirty the workspace with a different-size pass first.
        sampler.sample_columns_with(n / 2 + 3, &mut StdRng::seed_from_u64(seed ^ 1), &mut ws);
        let reused = sampler.sample_columns_with(n, &mut StdRng::seed_from_u64(seed), &mut ws);
        let fresh = sampler.sample_columns(n, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(reused, fresh);
    }
}

/// The end-to-end production path — mirror-descent fit, then batched
/// sampling — agrees with the oracle bit for bit (the proptests above feed
/// raw tables; this one goes through `estimate` like the synthesizers do).
#[test]
fn fitted_model_sampling_matches_naive() {
    let domain = vec![3usize, 2, 4, 2, 1];
    let mut ms = Vec::new();
    for a in 0..domain.len() - 1 {
        let cells = domain[a] * domain[a + 1];
        ms.push(NoisyMeasurement {
            attrs: vec![a, a + 1],
            values: (0..cells).map(|k| 40.0 + 13.0 * (k as f64).sin()).collect(),
            sigma: 2.0,
        });
    }
    let model = estimate(
        &domain,
        &ms,
        EstimationOptions {
            iterations: 30,
            initial_step: 1.0,
            cell_limit: 1 << 21,
            fit_threads: 1,
        },
    )
    .unwrap();
    let sampler = TreeSampler::new(&model).unwrap();
    for seed in [1u64, 17, 4242] {
        let batched = sampler.sample_columns(5_000, &mut StdRng::seed_from_u64(seed));
        let naive = sampler.sample_columns_naive(5_000, &mut StdRng::seed_from_u64(seed));
        assert_eq!(batched, naive, "seed {seed}");
    }
}

/// A separator configuration with zero mass in every member cell must
/// resolve through the uniform fallback identically on both paths (and
/// produce in-range codes).
#[test]
fn zero_mass_group_hits_uniform_fallback_identically() {
    // Pair cliques {0,1} and {1,2} share separator {1}; attribute 1's
    // code 1 never receives mass in the second clique, so its separator
    // group in that clique is all-zero.
    let shape = vec![2usize, 2, 3];
    let tree = JunctionTree::build(&shape, &[vec![0, 1], vec![1, 2]], 1 << 8).unwrap();
    let mut tables: Vec<Vec<f64>> = Vec::new();
    for c in 0..tree.cliques().len() {
        let cells: usize = tree.clique_shape(c).iter().product();
        let attrs = &tree.cliques()[c];
        let table: Vec<f64> = (0..cells)
            .map(|cell| {
                if attrs.as_slice() == [1, 2] {
                    // Row-major over (attr 1, attr 2): zero out attr1 = 1.
                    if cell / 3 == 1 {
                        0.0
                    } else {
                        1.0 + cell as f64
                    }
                } else {
                    1.0 + cell as f64
                }
            })
            .collect();
        tables.push(table);
    }
    let sampler = TreeSampler::from_probabilities(&tree, &tables).unwrap();
    let batched = sampler.sample_columns(4_000, &mut StdRng::seed_from_u64(8));
    let naive = sampler.sample_columns_naive(4_000, &mut StdRng::seed_from_u64(8));
    assert_eq!(batched, naive);
    // The fallback actually fired: attr 1 takes code 1 sometimes (the
    // first clique gives it mass), and those rows still get valid attr-2
    // codes from the uniform fallback.
    let ones = (0..4_000).filter(|&r| batched[1][r] == 1).count();
    assert!(ones > 0, "separator code 1 never sampled");
    assert!(batched[2].iter().all(|&c| c < 3));
}
