//! Property-based tests for the graphical-model substrate: factor algebra
//! laws and junction-tree invariants on random structures.

use proptest::prelude::*;
use synrd_pgm::{calibrate, Factor, JunctionTree};

/// Strategy: a factor over `attrs` (global ids 0..k) with random log values.
fn random_factor(attrs: Vec<usize>, shape: Vec<usize>) -> impl Strategy<Value = Factor> {
    let cells: usize = shape.iter().product();
    proptest::collection::vec(-3.0f64..3.0, cells..=cells)
        .prop_map(move |vals| Factor::from_log_values(attrs.clone(), shape.clone(), vals).unwrap())
}

proptest! {
    /// Marginalizing a product over the second factor's exclusive scope
    /// yields the first factor scaled by the second's total mass.
    #[test]
    fn product_marginalization_law(
        fa in random_factor(vec![0], vec![3]),
        fb in random_factor(vec![1], vec![4]),
    ) {
        let joint = fa.multiply(&fb).unwrap();
        let back = joint.marginalize_keep(&[0]).unwrap();
        let total_b = fb.log_sum_exp();
        for (orig, marg) in fa.log_values().iter().zip(back.log_values()) {
            prop_assert!((orig + total_b - marg).abs() < 1e-9);
        }
    }

    /// Normalization makes probabilities sum to 1 and keeps ratios.
    #[test]
    fn normalization_preserves_ratios(f in random_factor(vec![0, 2], vec![2, 3])) {
        let probs = f.probabilities();
        prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Ratio of first two cells must match the raw log difference.
        let want = (f.log_values()[0] - f.log_values()[1]).exp();
        let got = probs[0] / probs[1];
        prop_assert!((want - got).abs() / want.max(1.0) < 1e-6);
    }

    /// Expansion followed by marginalization is identity up to constants.
    #[test]
    fn expand_marginalize_round_trip(f in random_factor(vec![1], vec![4])) {
        let expanded = f.expand(&[0, 1, 2], &[2, 4, 3]).unwrap();
        let back = expanded.marginalize_keep(&[1]).unwrap();
        // Each cell gains a factor of 2*3 = 6 mass (uniform replication).
        for (orig, marg) in f.log_values().iter().zip(back.log_values()) {
            prop_assert!((orig + 6.0f64.ln() - marg).abs() < 1e-9);
        }
    }

    /// Junction trees cover every measurement set, for random pair sets.
    #[test]
    fn junction_tree_covers_measurements(
        shape in proptest::collection::vec(2usize..=4, 3..=7),
        pair_seeds in proptest::collection::vec((0usize..100, 0usize..100), 1..=8),
    ) {
        let d = shape.len();
        let sets: Vec<Vec<usize>> = pair_seeds
            .iter()
            .map(|&(a, b)| {
                let (x, y) = (a % d, b % d);
                if x == y { vec![x] } else { let mut v = vec![x, y]; v.sort_unstable(); v }
            })
            .collect();
        let jt = JunctionTree::build(&shape, &sets, 1 << 20).unwrap();
        for s in &sets {
            prop_assert!(jt.containing_clique(s).is_some(), "{s:?} uncovered");
        }
        // Every attribute appears in some clique.
        for a in 0..d {
            prop_assert!(jt.containing_clique(&[a]).is_some());
        }
    }

    /// Calibrated beliefs agree on separators for random chain potentials.
    #[test]
    fn calibration_separator_consistency(
        vals in proptest::collection::vec(-2.0f64..2.0, 12..=12),
    ) {
        let shape = vec![2usize, 2, 2];
        let sets = vec![vec![0, 1], vec![1, 2]];
        let tree = JunctionTree::build(&shape, &sets, 1 << 20).unwrap();
        let pots: Vec<Factor> = tree
            .cliques()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let cshape: Vec<usize> = c.iter().map(|&a| shape[a]).collect();
                let cells: usize = cshape.iter().product();
                Factor::from_log_values(
                    c.clone(),
                    cshape,
                    vals[i * 4..i * 4 + cells].to_vec(),
                )
                .unwrap()
            })
            .collect();
        let cal = calibrate(&tree, &pots).unwrap();
        for (i, j, sep) in tree.edges() {
            let mi = cal.beliefs[*i].marginalize_keep(sep).unwrap().probabilities();
            let mj = cal.beliefs[*j].marginalize_keep(sep).unwrap().probabilities();
            for (a, b) in mi.iter().zip(&mj) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
