//! Calibration determinism: the workspace-based [`calibrate_into`] path
//! must produce **bit-identical** beliefs to the naive-reference
//! calibration on randomized junction trees, and the mirror-descent loop
//! must perform zero factor-buffer allocations per iteration after
//! warm-up.

use proptest::prelude::*;
use synrd_pgm::{
    calibrate, calibrate_into, calibrate_naive, estimate, estimate_naive, factor_buffer_allocs,
    CalibratedTree, CalibrationWorkspace, EstimationOptions, Factor, JunctionTree,
    NoisyMeasurement,
};

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// A random domain, a random set of pair/triple measurements over it, and
/// random (occasionally -inf) clique potential values.
fn random_problem() -> impl Strategy<Value = (Vec<usize>, Vec<Vec<usize>>, Vec<f64>)> {
    proptest::collection::vec(2usize..=4, 3..=7).prop_flat_map(|shape| {
        (
            Just(shape),
            proptest::collection::vec((0usize..100, 0usize..100, 0usize..100), 1..=8),
            // Potential raw material: enough values for any clique layout;
            // sparse -inf cells exercise the degenerate-normalize path.
            proptest::collection::vec(
                (0u8..=19, -3.0f64..3.0).prop_map(
                    |(k, v)| {
                        if k == 0 {
                            f64::NEG_INFINITY
                        } else {
                            v
                        }
                    },
                ),
                4096..=4096,
            ),
        )
            .prop_map(|(shape, seeds, vals)| {
                let d = shape.len();
                let sets: Vec<Vec<usize>> = seeds
                    .iter()
                    .map(|&(a, b, c)| {
                        let mut v = vec![a % d, b % d, c % d];
                        v.sort_unstable();
                        v.dedup();
                        v
                    })
                    .collect();
                (shape, sets, vals)
            })
    })
}

/// Clique potentials carved deterministically out of the raw value pool.
fn potentials_for(tree: &JunctionTree, pool: &[f64]) -> Vec<Factor> {
    let mut offset = 0usize;
    tree.cliques()
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let cshape = tree.clique_shape(i).to_vec();
            let cells: usize = cshape.iter().product();
            let vals: Vec<f64> = (0..cells)
                .map(|k| pool[(offset + k) % pool.len()])
                .collect();
            offset += cells;
            Factor::from_log_values(c.clone(), cshape, vals).unwrap()
        })
        .collect()
}

proptest! {
    /// Workspace calibration ≡ naive-reference calibration, bit for bit,
    /// on random junction trees — including workspace reuse across
    /// potentials of the same tree.
    #[test]
    fn calibrate_matches_naive_bitwise((shape, sets, vals) in random_problem()) {
        let tree = JunctionTree::build(&shape, &sets, 1 << 16).unwrap();
        let pots = potentials_for(&tree, &vals);

        let naive = calibrate_naive(&tree, &pots).unwrap();
        let fresh = calibrate(&tree, &pots).unwrap();

        let mut ws = CalibrationWorkspace::new();
        let mut reused = CalibratedTree::default();
        // Calibrate twice through the same workspace: the second pass must
        // not be perturbed by leftover message/belief state.
        calibrate_into(&tree, &pots, &mut ws, &mut reused).unwrap();
        calibrate_into(&tree, &pots, &mut ws, &mut reused).unwrap();

        for (c, want) in naive.beliefs.iter().enumerate() {
            prop_assert!(
                bits_eq(fresh.beliefs[c].log_values(), want.log_values()),
                "fresh calibrate diverged from naive at clique {c}:\n  \
                 stride: {:?}\n  naive:  {:?}",
                fresh.beliefs[c].log_values(), want.log_values()
            );
            prop_assert!(
                bits_eq(reused.beliefs[c].log_values(), want.log_values()),
                "workspace-reuse calibrate diverged from naive at clique {c}"
            );
        }
    }
}

proptest! {
    /// Full mirror descent ≡ the naive-reference estimation, bit for bit:
    /// same beliefs, same final loss, on random noisy measurement sets.
    #[test]
    fn estimate_matches_naive_bitwise(
        (shape, sets, vals) in random_problem(),
        iters in 1usize..=12,
    ) {
        let measurements: Vec<NoisyMeasurement> = sets
            .iter()
            .enumerate()
            .map(|(i, attrs)| {
                let cells: usize = attrs.iter().map(|&a| shape[a]).product();
                NoisyMeasurement {
                    attrs: attrs.clone(),
                    values: (0..cells)
                        .map(|k| 50.0 * vals[(i * 31 + k) % vals.len()].clamp(-3.0, 3.0).abs())
                        .collect(),
                    sigma: 1.0 + i as f64,
                }
            })
            .collect();
        let opts = EstimationOptions {
            iterations: iters,
            initial_step: 1.0,
            cell_limit: 1 << 16,
            fit_threads: 1,
        };
        let fast = estimate(&shape, &measurements, opts).unwrap();
        let naive = estimate_naive(&shape, &measurements, opts).unwrap();
        prop_assert_eq!(fast.final_loss().to_bits(), naive.final_loss().to_bits());
        prop_assert_eq!(fast.n_estimate().to_bits(), naive.n_estimate().to_bits());
        for (c, (a, b)) in fast
            .calibrated()
            .beliefs
            .iter()
            .zip(&naive.calibrated().beliefs)
            .enumerate()
        {
            prop_assert!(
                bits_eq(a.log_values(), b.log_values()),
                "estimate diverged from naive at clique {}:\n  stride: {:?}\n  naive:  {:?}",
                c, a.log_values(), b.log_values()
            );
        }
    }
}

proptest! {
    /// A full descent is bit-identical at every fit-thread count: the loss
    /// pass marginalizes targets into disjoint buffers and keeps the loss
    /// reduction chain sequential, so chunking must never change a bit.
    /// Odd counts (3, 7) catch remainder-chunk ordering bugs.
    #[test]
    fn estimate_is_bit_identical_across_fit_threads(
        (shape, sets, vals) in random_problem(),
        iters in 1usize..=10,
        threads in (0usize..3).prop_map(|i| [2usize, 3, 7][i]),
    ) {
        let measurements: Vec<NoisyMeasurement> = sets
            .iter()
            .enumerate()
            .map(|(i, attrs)| {
                let cells: usize = attrs.iter().map(|&a| shape[a]).product();
                NoisyMeasurement {
                    attrs: attrs.clone(),
                    values: (0..cells)
                        .map(|k| 50.0 * vals[(i * 31 + k) % vals.len()].clamp(-3.0, 3.0).abs())
                        .collect(),
                    sigma: 1.0 + i as f64,
                }
            })
            .collect();
        let opts = EstimationOptions {
            iterations: iters,
            initial_step: 1.0,
            cell_limit: 1 << 16,
            fit_threads: 1,
        };
        let sequential = estimate(&shape, &measurements, opts).unwrap();
        let parallel = estimate(
            &shape,
            &measurements,
            EstimationOptions { fit_threads: threads, ..opts },
        )
        .unwrap();
        prop_assert_eq!(
            parallel.final_loss().to_bits(),
            sequential.final_loss().to_bits()
        );
        for (c, (a, b)) in parallel
            .calibrated()
            .beliefs
            .iter()
            .zip(&sequential.calibrated().beliefs)
            .enumerate()
        {
            prop_assert!(
                bits_eq(a.log_values(), b.log_values()),
                "fit_threads={} diverged from sequential at clique {}",
                threads, c
            );
        }
    }
}

/// Chain measurements over a small domain (the shape of the MST hot path).
fn chain_measurements() -> (Vec<usize>, Vec<NoisyMeasurement>) {
    let domain = vec![3usize, 2, 4, 2];
    let mut ms = Vec::new();
    for a in 0..domain.len() - 1 {
        let cells = domain[a] * domain[a + 1];
        ms.push(NoisyMeasurement {
            attrs: vec![a, a + 1],
            values: (0..cells).map(|k| 40.0 + 13.0 * (k as f64).sin()).collect(),
            sigma: 2.0,
        });
    }
    (domain, ms)
}

/// The acceptance criterion of the stride-kernel rewrite: once the
/// estimation buffers are warm, *extra mirror-descent iterations allocate
/// no factor buffers at all*. Doubling the iteration count must leave the
/// thread-local allocation counter delta exactly unchanged.
#[test]
fn mirror_descent_iterations_allocate_nothing_after_warmup() {
    let (domain, ms) = chain_measurements();
    let run = |iterations: usize| -> u64 {
        let opts = EstimationOptions {
            iterations,
            initial_step: 1.0,
            cell_limit: 1 << 21,
            fit_threads: 1,
        };
        let before = factor_buffer_allocs();
        let model = estimate(&domain, &ms, opts).unwrap();
        let after = factor_buffer_allocs();
        // Keep the model alive through the measurement so drops can't hide
        // allocator traffic (the counter only tracks allocations anyway).
        assert!(model.final_loss().is_finite());
        after - before
    };
    // Warm up thread-local state, then compare 30 vs 120 iterations.
    run(1);
    let short = run(30);
    let long = run(120);
    assert_eq!(
        short, long,
        "mirror-descent iterations performed factor-buffer allocations \
         (30 iters: {short} allocs, 120 iters: {long} allocs)"
    );
}

/// Same property through the public sampling entry point used by the
/// synthesizers: fit + sampler construction allocates a fixed number of
/// factor buffers regardless of iteration count.
#[test]
fn fit_allocations_are_independent_of_iteration_count() {
    let (domain, ms) = chain_measurements();
    let allocs_at = |iters: usize| -> u64 {
        let opts = EstimationOptions {
            iterations: iters,
            initial_step: 1.0,
            cell_limit: 1 << 21,
            fit_threads: 1,
        };
        let mut ws = CalibrationWorkspace::new();
        let before = factor_buffer_allocs();
        let model = synrd_pgm::estimate_with(&domain, &ms, opts, &mut ws).unwrap();
        let sampler = synrd_pgm::TreeSampler::new_with_workspace(&model, &mut ws).unwrap();
        let _ = sampler;
        factor_buffer_allocs() - before
    };
    allocs_at(1);
    assert_eq!(allocs_at(20), allocs_at(80));
}
